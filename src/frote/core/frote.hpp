// FROTE — Feedback Rule-Based Oversampling Technique (Algorithm 1).
//
// Given an input dataset D, a black-box training algorithm A and a
// conflict-free feedback rule set F, produce an augmented dataset D̂ such
// that retraining A on D̂ aligns the model with F (minimises objective (3))
// without degrading outside-coverage performance.
//
// Usage (one-shot legacy entry point):
//   FroteConfig config;                      // τ, q, k, strategy...
//   auto result = frote_edit(train, learner, frs, config);
//   const Model& edited = *result.model;     // retrained on result.augmented
//
// frote_edit() is a thin compatibility shim over the composable Engine /
// Session API (core/engine.hpp) and produces bit-identical output for the
// same seed. New code that wants to pause, inspect, or customize the loop
// should build an Engine instead; include "frote/frote_api.hpp" for the
// whole public surface plus the migration notes.
#pragma once

#include <functional>
#include <memory>

#include "frote/core/selection.hpp"
#include "frote/metrics/metrics.hpp"
#include "frote/ml/model.hpp"
#include "frote/rules/ruleset.hpp"

namespace frote {

/// Input-dataset modification applied before augmentation (§5.1): covered
/// instances whose label disagrees with their covering rule are kept
/// (kNone), relabelled to the rule's class (kRelabel) or removed (kDrop).
enum class ModStrategy { kNone, kRelabel, kDrop };

struct FroteConfig {
  /// Iteration limit τ: the number of times the user is willing to retrain.
  std::size_t tau = 200;
  /// Oversampling fraction q: allowed augmentation relative to |D|.
  double q = 0.5;
  /// Nearest neighbours for generation and the BP support threshold (k+1).
  std::size_t k = 5;
  /// Instances generated per iteration; 0 ⇒ the paper's q·|D|/τ default.
  std::size_t eta = 0;
  SelectionStrategy selection = SelectionStrategy::kRandom;
  /// When set, overrides `selection` with a caller-provided strategy (e.g.
  /// the supplement's online-learning proxy, core/online_proxy.hpp). Must
  /// outlive the frote_edit call.
  std::shared_ptr<const BaseInstanceSelector> custom_selector;
  ModStrategy mod_strategy = ModStrategy::kRelabel;
  /// Probability of following the rule's label during generation; < 1
  /// activates the probabilistic-rule scheme of supplement B (Table 6).
  double rule_confidence = 1.0;
  /// Accept every batch regardless of Ĵ (ablation; Algorithm 1 uses false).
  bool accept_always = false;
  std::uint64_t seed = 42;
  /// Threads for the engine-side hot paths (the Ĵ evaluation sweep and the
  /// IP selector's candidate scoring). 0 ⇒ the FROTE_NUM_THREADS environment
  /// variable (default 1 — today's serial behaviour). Output is
  /// bit-identical for every value (util/parallel.hpp).
  int threads = 0;
};

/// A point of the augmentation trace (used by the Fig 9 reproduction).
struct ProgressPoint {
  std::size_t iteration = 0;
  std::size_t instances_added = 0;  // cumulative N
  double train_j_hat_bar = 0.0;     // Ĵ̄ of the *accepted* model on D̂
  bool accepted = false;
};

struct FroteResult {
  /// The output dataset D̂ (input after modification + accepted synthetics).
  Dataset augmented;
  /// Model retrained on `augmented` (the edited model M_D̂).
  std::unique_ptr<Model> model;
  std::size_t instances_added = 0;
  std::size_t iterations_run = 0;
  std::size_t iterations_accepted = 0;
  std::vector<ProgressPoint> trace;
};

/// Apply the mod strategy to `data` in place: every instance covered by a
/// rule of `frs` whose label has zero probability under the rule's π is
/// relabelled to the rule's mode class or dropped. Returns #rows affected.
std::size_t apply_mod_strategy(Dataset& data, const FeedbackRuleSet& frs,
                               ModStrategy strategy);

/// Optional per-acceptance hook (model retrained on the accepted D′ and the
/// cumulative instance count) — lets experiments trace test-set J̄ growth.
/// Superseded by ProgressObserver (core/stages.hpp); the shim adapts it.
using AcceptCallback =
    std::function<void(const Model& model, std::size_t instances_added)>;

/// Run Algorithm 1 end to end. `data` is the input dataset D (already
/// mod-applied if the caller wants a strategy other than
/// config.mod_strategy == kNone; this function applies config.mod_strategy
/// itself first). Implemented as a shim over Engine/Session: equivalent to
/// building an Engine from `config` + `frs`, opening a session on
/// (data, learner) and running it to the default τ/budget stopping
/// criterion. Throws frote::Error on invalid configuration or empty data —
/// note the Builder validates more than the old implementation did: degenerate
/// configs that were previously tolerated (k == 0, rule_confidence outside
/// [0, 1]) now throw instead of running with unspecified behaviour.
FroteResult frote_edit(const Dataset& data, const Learner& learner,
                       const FeedbackRuleSet& frs, const FroteConfig& config,
                       const AcceptCallback& on_accept = {});

}  // namespace frote
