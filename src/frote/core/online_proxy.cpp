#include "frote/core/online_proxy.hpp"

#include <algorithm>

#include "frote/core/generate.hpp"
#include "frote/metrics/metrics.hpp"
#include "frote/ml/online_logreg.hpp"

namespace frote {

std::vector<SelectedInstance> OnlineProxySelector::select(
    const Dataset& data, const BasePopulation& bp, const Model& model,
    std::size_t eta, Rng& rng) const {
  std::vector<SelectedInstance> out;
  const std::size_t m = bp.per_rule.size();
  if (m == 0 || eta == 0) return out;

  // Step 1 of eq. (7): distill M_D̂ into the parametric proxy M̂.
  const OnlineLogReg base_proxy(data, model);

  // Subsampled evaluation set for Ĵ (the supplement's O(|D̂|²) bottleneck).
  const std::size_t sample_size =
      std::min(config_.eval_sample, data.size());
  const auto eval_rows =
      rng.sample_without_replacement(data.size(), sample_size);
  const Dataset eval_set = data.subset(eval_rows);

  const MixedDistance distance = MixedDistance::fit(data);
  GenerateConfig generate_config;
  generate_config.k = config_.k;

  const std::size_t per_rule_budget =
      std::max<std::size_t>(1, eta / m);

  std::vector<double> row;
  int label = 0;
  for (std::size_t r = 0; r < m; ++r) {
    const auto& pool = bp.per_rule[r];
    if (pool.indices.size() < 2) continue;
    RuleConstrainedGenerator generator(data, frs_->rule(r), pool, distance,
                                       generate_config);
    // Score a random sample of candidate singletons.
    const std::size_t num_candidates =
        std::min(config_.candidates_per_rule, pool.indices.size());
    const auto slots =
        rng.sample_without_replacement(pool.indices.size(), num_candidates);
    std::vector<std::pair<double, std::size_t>> scored;  // (score, slot)
    for (std::size_t slot : slots) {
      if (!generator.generate(slot, rng, row, label)) continue;
      // Step 2: OL(M̂, Generate({i})) — update a copy of the proxy.
      OnlineLogReg updated = base_proxy;
      for (std::size_t u = 0; u < config_.updates_per_candidate; ++u) {
        updated.update(row, label);
      }
      scored.emplace_back(train_j_hat_bar(updated, *frs_, eval_set), slot);
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (std::size_t i = 0;
         i < std::min(per_rule_budget, scored.size()); ++i) {
      out.push_back({r, scored[i].second});
    }
  }
  if (out.size() > eta) out.resize(eta);
  return out;
}

}  // namespace frote
