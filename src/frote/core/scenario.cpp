#include "frote/core/scenario.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <utility>

#include "frote/core/checkpoint.hpp"
#include "frote/core/engine.hpp"
#include "frote/data/generators.hpp"
#include "frote/metrics/metrics.hpp"
#include "frote/rules/parser.hpp"
#include "frote/rules/ruleset.hpp"
#include "frote/util/hash.hpp"
#include "frote/util/json_reader.hpp"
#include "frote/util/rng.hpp"

namespace frote {

namespace {

/// Same row walk and byte order as the session pool's digest
/// (core/session_pool.cpp) — both witness the identical quantity, so a
/// scenario report's digest is directly comparable with session.result's.
std::uint64_t dataset_digest(const Dataset& data) {
  Fnv1a64 h;
  h.update_u64(data.size());
  h.update_u64(data.num_features());
  for (std::size_t i = 0; i < data.size(); ++i) {
    h.update_u64(
        static_cast<std::uint64_t>(static_cast<std::int64_t>(data.label(i))));
    h.update_u64(data.row_id(i));
    for (const double value : data.row(i)) {
      h.update_u64(std::bit_cast<std::uint64_t>(value));
    }
  }
  return h.digest();
}

std::string hex64(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

}  // namespace

// ---------------------------------------------------------------------------
// GeneratorSpec

JsonValue GeneratorSpec::to_json() const {
  JsonValue out = JsonValue::object();
  out.set("name", name);
  out.set("size", size);
  out.set("seed", seed);
  // Overrides are emitted only when set, so a default-configured generator
  // round-trips byte-identically (and reads back as "blueprint default",
  // not as a frozen copy of today's default values).
  if (label_noise.has_value()) out.set("label_noise", *label_noise);
  if (!class_weights.empty()) {
    JsonValue weights = JsonValue::array();
    for (double w : class_weights) weights.push_back(w);
    out.set("class_weights", std::move(weights));
  }
  return out;
}

Expected<GeneratorSpec, FroteError> GeneratorSpec::from_json(
    const JsonValue& json) {
  GeneratorSpec spec;
  JsonFieldReader reader(json, "generator spec");
  reader.read("name", spec.name);
  reader.read("size", spec.size);
  reader.read("seed", spec.seed);
  if (reader.find("label_noise") != nullptr) {
    double noise = 0.0;
    reader.read("label_noise", noise);
    spec.label_noise = noise;
  }
  if (const JsonValue* weights = reader.find("class_weights")) {
    if (!weights->is_array()) {
      reader.add_problem("class_weights must be an array of numbers");
    } else {
      for (const auto& w : weights->items()) {
        if (!w.is_number()) {
          reader.add_problem("class_weights entries must be numbers");
          break;
        }
        spec.class_weights.push_back(w.as_double());
      }
    }
  }
  if (spec.label_noise.has_value() &&
      (*spec.label_noise < 0.0 || *spec.label_noise >= 1.0)) {
    reader.add_problem("label_noise must be in [0, 1)");
  }
  for (double w : spec.class_weights) {
    if (!(w >= 0.0)) {
      reader.add_problem("class_weights entries must be non-negative");
      break;
    }
  }
  if (!reader.ok()) return reader.take_error();
  return spec;
}

Expected<Dataset> generate_dataset(const GeneratorSpec& spec) {
  GeneratorOverrides overrides;
  overrides.label_noise = spec.label_noise;
  overrides.class_weights = spec.class_weights;
  try {
    return make_dataset(dataset_by_name(spec.name), spec.size, spec.seed,
                        overrides);
  } catch (const std::exception& e) {
    return FroteError::unknown_component(
        "cannot generate synthetic dataset '" + spec.name + "': " + e.what());
  }
}

Expected<Schema> generator_schema(const GeneratorSpec& spec) {
  try {
    return dataset_schema(dataset_by_name(spec.name));
  } catch (const std::exception& e) {
    return FroteError::unknown_component(
        "cannot resolve synthetic dataset '" + spec.name + "': " + e.what());
  }
}

// ---------------------------------------------------------------------------
// ScenarioSpec

JsonValue GroupReportSpec::to_json() const {
  JsonValue out = JsonValue::object();
  out.set("feature", feature);
  out.set("favorable", favorable);
  return out;
}

JsonValue ExpectedOutcome::to_json() const {
  JsonValue out = JsonValue::object();
  if (min_final_j_bar.has_value()) out.set("min_final_j_bar", *min_final_j_bar);
  if (min_j_bar_gain.has_value()) out.set("min_j_bar_gain", *min_j_bar_gain);
  if (min_instances_added.has_value()) {
    out.set("min_instances_added", *min_instances_added);
  }
  if (max_group_gap.has_value()) out.set("max_group_gap", *max_group_gap);
  return out;
}

JsonValue ScenarioSpec::to_json() const {
  JsonValue out = JsonValue::object();
  out.set("format", "frote.scenario_spec");
  out.set("version", kFormatVersion);
  out.set("name", name);
  out.set("kind", kind);
  if (!description.empty()) out.set("description", description);
  out.set("generator", generator.to_json());
  out.set("engine", engine.to_json());
  if (!phases.empty()) {
    JsonValue list = JsonValue::array();
    for (const auto& phase : phases) {
      JsonValue p = JsonValue::object();
      p.set("arrive_rows", phase.arrive_rows);
      JsonValue rules = JsonValue::array();
      for (const auto& rule : phase.rules) rules.push_back(rule);
      p.set("rules", std::move(rules));
      p.set("steps", phase.steps);
      list.push_back(std::move(p));
    }
    out.set("phases", std::move(list));
  }
  if (kind == "drift") out.set("restore_at_drift", restore_at_drift);
  if (group_report.has_value()) out.set("group_report", group_report->to_json());
  if (expected.any()) out.set("expected", expected.to_json());
  return out;
}

namespace {

/// Validate one rule's text against the generator schema, labelling parse
/// failures with where in the document the rule lives ("engine rule 2",
/// "phase 1 rule 0") plus the parser's position-annotated message.
void check_rule_text(const std::string& rule, const Schema& schema,
                     const std::string& where, std::size_t index,
                     JsonFieldReader& reader) {
  try {
    parse_rule(rule, schema);
  } catch (const Error& e) {
    reader.add_problem(where + " rule " + std::to_string(index) + ": " +
                       e.what());
  }
}

}  // namespace

Expected<ScenarioSpec, FroteError> ScenarioSpec::from_json(
    const JsonValue& json) {
  ScenarioSpec spec;
  JsonFieldReader reader(json, "scenario spec");
  // Required format marker + refuse-the-future version check, exactly the
  // EngineSpec policy (docs/DESIGN.md §6): a mislabelled document must not
  // quietly parse as an all-defaults scenario.
  const JsonValue* format = reader.find("format");
  if (format == nullptr || !format->is_string() ||
      format->as_string() != "frote.scenario_spec") {
    return FroteError::parse_error(
        "not a scenario spec (format must be \"frote.scenario_spec\")");
  }
  if (const JsonValue* version = reader.find("version")) {
    std::uint64_t v = 0;
    try {
      v = version->as_uint64();
    } catch (const Error& e) {
      return FroteError::parse_error(std::string("invalid version: ") +
                                     e.what());
    }
    if (v > kFormatVersion) {
      return FroteError::parse_error(
          "scenario spec version " + std::to_string(v) +
          " is newer than this reader (" + std::to_string(kFormatVersion) +
          ")");
    }
  }
  reader.read("name", spec.name);
  reader.read("kind", spec.kind);
  reader.read("description", spec.description);
  if (const JsonValue* generator = reader.find("generator")) {
    auto parsed = GeneratorSpec::from_json(*generator);
    if (!parsed) return parsed.error();
    spec.generator = std::move(*parsed);
  }
  if (const JsonValue* engine = reader.find("engine")) {
    auto parsed = EngineSpec::from_json(*engine);
    if (!parsed) return parsed.error();
    spec.engine = std::move(*parsed);
  }
  if (const JsonValue* phases = reader.find("phases")) {
    if (!phases->is_array()) {
      reader.add_problem("phases must be an array");
    } else {
      for (const auto& entry : phases->items()) {
        ScenarioPhase phase;
        JsonFieldReader phase_reader(entry, "scenario phase");
        phase_reader.read("arrive_rows", phase.arrive_rows);
        phase_reader.read("steps", phase.steps);
        if (const JsonValue* rules = phase_reader.find("rules")) {
          if (!rules->is_array()) {
            phase_reader.add_problem("rules must be an array of rule strings");
          } else {
            for (const auto& rule : rules->items()) {
              if (!rule.is_string()) {
                phase_reader.add_problem("rules entries must be strings");
                break;
              }
              phase.rules.push_back(rule.as_string());
            }
          }
        }
        if (!phase_reader.ok()) return phase_reader.take_error();
        spec.phases.push_back(std::move(phase));
      }
    }
  }
  reader.read("restore_at_drift", spec.restore_at_drift);
  if (const JsonValue* group = reader.find("group_report")) {
    GroupReportSpec group_spec;
    JsonFieldReader group_reader(*group, "group report spec");
    group_reader.read("feature", group_spec.feature);
    group_reader.read("favorable", group_spec.favorable);
    if (group_spec.feature.empty()) {
      group_reader.add_problem("feature is required");
    }
    if (group_spec.favorable.empty()) {
      group_reader.add_problem("favorable is required");
    }
    if (!group_reader.ok()) return group_reader.take_error();
    spec.group_report = std::move(group_spec);
  }
  if (const JsonValue* expected = reader.find("expected")) {
    JsonFieldReader expected_reader(*expected, "expected outcome");
    const auto read_optional_double = [&](const char* key,
                                          std::optional<double>& out) {
      if (expected_reader.find(key) == nullptr) return;
      double value = 0.0;
      expected_reader.read(key, value);
      out = value;
    };
    read_optional_double("min_final_j_bar", spec.expected.min_final_j_bar);
    read_optional_double("min_j_bar_gain", spec.expected.min_j_bar_gain);
    read_optional_double("max_group_gap", spec.expected.max_group_gap);
    if (expected_reader.find("min_instances_added") != nullptr) {
      std::uint64_t value = 0;
      expected_reader.read("min_instances_added", value);
      spec.expected.min_instances_added = value;
    }
    if (!expected_reader.ok()) return expected_reader.take_error();
  }

  // Document-shape validation.
  if (spec.name.empty()) reader.add_problem("name is required");
  if (spec.kind != "static" && spec.kind != "drift") {
    reader.add_problem("kind must be \"static\" or \"drift\", got \"" +
                       spec.kind + "\"");
  }
  if (spec.kind == "static" && !spec.phases.empty()) {
    reader.add_problem("kind \"static\" must not have phases");
  }
  if (spec.kind == "drift" && spec.phases.empty()) {
    reader.add_problem("kind \"drift\" requires a non-empty phases list");
  }
  if (spec.engine.dataset.has_value()) {
    reader.add_problem(
        "engine.dataset must be unset (the generator is the scenario's "
        "input channel)");
  }
  if (!reader.ok()) return reader.take_error();

  // Cross-validation against the generator's schema: every rule parses, the
  // group feature exists and is categorical, the favorable class exists,
  // class_weights has one weight per class. A spec that parses is a spec
  // that runs.
  auto schema = generator_schema(spec.generator);
  if (!schema) {
    return FroteError::parse_error("invalid scenario spec: generator: " +
                                   schema.error().message);
  }
  for (std::size_t i = 0; i < spec.engine.rules.size(); ++i) {
    check_rule_text(spec.engine.rules[i], *schema, "engine", i, reader);
  }
  for (std::size_t p = 0; p < spec.phases.size(); ++p) {
    for (std::size_t i = 0; i < spec.phases[p].rules.size(); ++i) {
      check_rule_text(spec.phases[p].rules[i], *schema,
                      "phase " + std::to_string(p), i, reader);
    }
  }
  if (!spec.generator.class_weights.empty() &&
      spec.generator.class_weights.size() != schema->num_classes()) {
    reader.add_problem(
        "class_weights must have one entry per class (" +
        std::to_string(schema->num_classes()) + "), got " +
        std::to_string(spec.generator.class_weights.size()));
  }
  if (spec.group_report.has_value()) {
    const auto& group = *spec.group_report;
    bool feature_ok = false;
    for (const auto& feature : schema->features()) {
      if (feature.name == group.feature) {
        if (feature.is_categorical()) {
          feature_ok = true;
        } else {
          reader.add_problem("group_report.feature \"" + group.feature +
                             "\" must be categorical");
          feature_ok = true;  // reported; skip the unknown-feature problem
        }
        break;
      }
    }
    if (!feature_ok) {
      reader.add_problem("group_report.feature \"" + group.feature +
                         "\" is not a feature of " + spec.generator.name);
    }
    const auto& classes = schema->class_names();
    if (std::find(classes.begin(), classes.end(), group.favorable) ==
        classes.end()) {
      reader.add_problem("group_report.favorable \"" + group.favorable +
                         "\" is not a class of " + spec.generator.name);
    }
  }
  if (spec.expected.max_group_gap.has_value() &&
      !spec.group_report.has_value()) {
    reader.add_problem("expected.max_group_gap requires a group_report");
  }
  if (!reader.ok()) return reader.take_error();
  return spec;
}

std::string ScenarioSpec::to_json_text(int indent) const {
  return json_dump(to_json(), indent);
}

Expected<ScenarioSpec, FroteError> ScenarioSpec::parse(
    std::string_view json_text) {
  auto json = json_parse(json_text);
  if (!json) return json.error();
  return from_json(*json);
}

// ---------------------------------------------------------------------------
// ScenarioReport

JsonValue ScenarioReport::to_json() const {
  JsonValue out = JsonValue::object();
  out.set("format", "frote.scenario_result");
  out.set("version", std::uint64_t{1});
  out.set("scenario", scenario);
  out.set("kind", kind);
  out.set("seed", seed);
  out.set("rows_initial", rows_initial);
  out.set("rows_final", rows_final);
  out.set("instances_added", instances_added);
  out.set("iterations_run", iterations_run);
  out.set("iterations_accepted", iterations_accepted);
  out.set("initial_j_bar", initial_j_bar);
  out.set("final_j_bar", final_j_bar);
  JsonValue rules_json = JsonValue::array();
  for (const auto& rule : rules) {
    JsonValue r = JsonValue::object();
    r.set("rule", rule.rule);
    r.set("covered", rule.covered);
    r.set("mra", rule.mra);
    rules_json.push_back(std::move(r));
  }
  out.set("rules", std::move(rules_json));
  if (!phases.empty()) {
    JsonValue phases_json = JsonValue::array();
    for (const auto& phase : phases) {
      JsonValue p = JsonValue::object();
      p.set("rows_arrived", phase.rows_arrived);
      p.set("rules_active", phase.rules_active);
      p.set("steps_run", phase.steps_run);
      p.set("iterations_accepted", phase.iterations_accepted);
      p.set("rows_total", phase.rows_total);
      p.set("j_bar", phase.j_bar);
      phases_json.push_back(std::move(p));
    }
    out.set("phases", std::move(phases_json));
  }
  if (!groups.empty()) {
    JsonValue groups_json = JsonValue::array();
    for (const auto& group : groups) {
      JsonValue g = JsonValue::object();
      g.set("group", group.group);
      g.set("rows", group.rows);
      g.set("favorable_before", group.favorable_before);
      g.set("favorable_after", group.favorable_after);
      groups_json.push_back(std::move(g));
    }
    out.set("groups", std::move(groups_json));
    out.set("group_gap", group_gap);
  }
  out.set("expected_ok", expected_ok);
  if (!expected_failures.empty()) {
    JsonValue failures = JsonValue::array();
    for (const auto& failure : expected_failures) failures.push_back(failure);
    out.set("expected_failures", std::move(failures));
  }
  out.set("dataset_digest", dataset_digest);
  return out;
}

std::string ScenarioReport::to_json_text(int indent) const {
  return json_dump(to_json(), indent);
}

// ---------------------------------------------------------------------------
// run_scenario

Expected<ScenarioSpec> resolve_scenario(const ScenarioSpec& spec,
                                        const ScenarioRunOptions& options) {
  ScenarioSpec resolved = spec;
  if (options.seed.has_value()) {
    // One seed reseeds the whole scenario — data generation, arrival
    // batches and the engine loop — so a seed grid axis replicates the
    // entire experiment, not just the editing loop. An explicit
    // learner_seed pin in the spec is deliberate and stays.
    resolved.generator.seed = *options.seed;
    resolved.engine.seed = *options.seed;
  }
  if (!options.learner.empty()) resolved.engine.learner = options.learner;
  if (!options.selector.empty()) resolved.engine.selector = options.selector;
  if (options.threads >= 0) resolved.engine.threads = options.threads;
  return resolved;
}

namespace {

/// Per-group favorable-prediction rates of the baseline (trained on the raw
/// input dataset) vs the final edited model, both measured on the input
/// dataset — the same population, so the delta is the edit's effect.
Expected<std::vector<ScenarioGroupReport>> group_deltas(
    const GroupReportSpec& group, const Dataset& input, const Learner& learner,
    const Model& final_model, int threads, double& gap_out) {
  const Schema& schema = input.schema();
  const std::size_t feature = schema.feature_index(group.feature);
  const auto& classes = schema.class_names();
  const auto favorable_it =
      std::find(classes.begin(), classes.end(), group.favorable);
  if (favorable_it == classes.end()) {
    return FroteError::invalid_argument("group_report.favorable \"" +
                                        group.favorable +
                                        "\" is not a class name");
  }
  const int favorable =
      static_cast<int>(favorable_it - classes.begin());
  const std::unique_ptr<Model> baseline = learner.train(input);
  const std::vector<int> before = baseline->predict_all(input, threads);
  const std::vector<int> after = final_model.predict_all(input, threads);

  const auto& categories = schema.feature(feature).categories;
  std::vector<ScenarioGroupReport> out(categories.size());
  std::vector<std::size_t> favorable_before(categories.size(), 0);
  std::vector<std::size_t> favorable_after(categories.size(), 0);
  std::vector<std::size_t> rows(categories.size(), 0);
  for (std::size_t i = 0; i < input.size(); ++i) {
    const auto code = static_cast<std::size_t>(input.row(i)[feature]);
    rows[code] += 1;
    if (before[i] == favorable) favorable_before[code] += 1;
    if (after[i] == favorable) favorable_after[code] += 1;
  }
  double max_rate = -1.0, min_rate = 2.0;
  for (std::size_t c = 0; c < categories.size(); ++c) {
    out[c].group = categories[c];
    out[c].rows = rows[c];
    if (rows[c] > 0) {
      const double denom = static_cast<double>(rows[c]);
      out[c].favorable_before =
          static_cast<double>(favorable_before[c]) / denom;
      out[c].favorable_after = static_cast<double>(favorable_after[c]) / denom;
      max_rate = std::max(max_rate, out[c].favorable_after);
      min_rate = std::min(min_rate, out[c].favorable_after);
    }
  }
  gap_out = max_rate >= min_rate ? max_rate - min_rate : 0.0;
  return out;
}

/// Final-state rule reports: coverage and MRA of the final model over the
/// final D̂, for every rule active at the end of the run.
std::vector<ScenarioRuleReport> rule_reports(
    const std::vector<std::string>& rule_text, const Dataset& augmented,
    const Model& model, int threads) {
  std::vector<ScenarioRuleReport> out;
  out.reserve(rule_text.size());
  for (const auto& text : rule_text) {
    const FeedbackRule rule = parse_rule(text, augmented.schema());
    const RuleAgreement agreement =
        rule_agreement(model, rule, augmented, threads);
    out.push_back({text, agreement.covered,
                   agreement.covered > 0 ? agreement.mra : 0.0});
  }
  return out;
}

void check_expected(const ScenarioSpec& spec, ScenarioReport& report) {
  const auto fail = [&](std::string what) {
    report.expected_ok = false;
    report.expected_failures.push_back(std::move(what));
  };
  const auto& expected = spec.expected;
  if (expected.min_final_j_bar.has_value() &&
      report.final_j_bar < *expected.min_final_j_bar) {
    fail("final_j_bar " + std::to_string(report.final_j_bar) + " < " +
         std::to_string(*expected.min_final_j_bar));
  }
  if (expected.min_j_bar_gain.has_value() &&
      report.final_j_bar - report.initial_j_bar < *expected.min_j_bar_gain) {
    fail("j_bar gain " +
         std::to_string(report.final_j_bar - report.initial_j_bar) + " < " +
         std::to_string(*expected.min_j_bar_gain));
  }
  if (expected.min_instances_added.has_value() &&
      report.instances_added < *expected.min_instances_added) {
    fail("instances_added " + std::to_string(report.instances_added) + " < " +
         std::to_string(*expected.min_instances_added));
  }
  if (expected.max_group_gap.has_value() &&
      report.group_gap > *expected.max_group_gap) {
    fail("group_gap " + std::to_string(report.group_gap) + " > " +
         std::to_string(*expected.max_group_gap));
  }
}

/// Build the phase-p engine: the resolved engine spec with the rules active
/// at that phase and a per-phase derived seed (each drift segment is its
/// own deterministic stream; phase boundaries never share RNG state).
Expected<Engine> phase_engine(const EngineSpec& base,
                              const std::vector<std::string>& active_rules,
                              std::size_t phase_index, const Schema& schema) {
  EngineSpec phase_spec = base;
  phase_spec.rules = active_rules;
  phase_spec.seed = derive_seed(base.seed, phase_index);
  auto builder = Engine::Builder::from_spec(phase_spec, schema);
  if (!builder) return builder.error();
  return builder->build();
}

/// Drive one session segment: `steps` manual Session::step calls (stopping
/// once the session reports a terminal step), or run() when steps == 0.
void drive(Session& session, std::size_t steps) {
  if (steps == 0) {
    session.run();
    return;
  }
  for (std::size_t i = 0; i < steps && !session.finished(); ++i) {
    const StepReport report = session.step();
    if (report.terminal()) break;
  }
}

}  // namespace

Expected<ScenarioReport> run_scenario(const ScenarioSpec& spec,
                                      const ScenarioRunOptions& options) {
  auto resolved_spec = resolve_scenario(spec, options);
  if (!resolved_spec) return resolved_spec.error();
  const ScenarioSpec& resolved = *resolved_spec;
  const int threads = resolved.engine.threads;

  ScenarioReport report;
  report.scenario = resolved.name;
  report.kind = resolved.kind;
  report.seed = resolved.engine.seed;

  auto input = generate_dataset(resolved.generator);
  if (!input) return input.error();
  report.rows_initial = input->size();

  auto learner = make_spec_learner(resolved.engine);
  if (!learner) return learner.error();

  // The drift replay appends freshly generated batches and layers rules in
  // per-phase engines; the static path is the same loop with one phase that
  // arrives nothing and runs to the stopping criterion.
  std::vector<ScenarioPhase> schedule = resolved.phases;
  if (resolved.kind == "static") schedule.push_back(ScenarioPhase{});

  Dataset active = *input;
  std::vector<std::string> active_rules = resolved.engine.rules;
  std::unique_ptr<Model> final_model;
  for (std::size_t p = 0; p < schedule.size(); ++p) {
    const ScenarioPhase& phase = schedule[p];
    if (phase.arrive_rows > 0) {
      GeneratorSpec arrival = resolved.generator;
      arrival.size = phase.arrive_rows;
      // Independent batch under a derived seed — NOT a prefix of a longer
      // stream: the generator standardizes and calibrates over its whole
      // draw, so slicing would relabel history instead of extending it.
      arrival.seed = derive_seed(resolved.generator.seed, p + 1);
      auto batch = generate_dataset(arrival);
      if (!batch) return batch.error();
      active.append(*batch);
    }
    active_rules.insert(active_rules.end(), phase.rules.begin(),
                        phase.rules.end());

    auto engine = phase_engine(resolved.engine, active_rules,
                               resolved.kind == "drift" ? p : 0,
                               active.schema());
    if (!engine) return engine.error();
    auto session = engine->open(active, **learner);
    if (!session) return session.error();
    if (p == 0) {
      report.initial_j_bar = session->trace().front().train_j_hat_bar;
    }
    drive(*session, phase.steps);

    const SessionProgress progress = session->progress();
    report.iterations_run += progress.iterations_run;
    report.iterations_accepted += progress.iterations_accepted;
    report.instances_added += progress.instances_added;
    report.final_j_bar = session->best_j_hat_bar();
    if (resolved.kind == "drift") {
      ScenarioPhaseReport phase_report;
      phase_report.rows_arrived = phase.arrive_rows;
      phase_report.rules_active = active_rules.size();
      phase_report.steps_run = progress.iterations_run;
      phase_report.iterations_accepted = progress.iterations_accepted;
      phase_report.rows_total = session->augmented().size();
      phase_report.j_bar = session->best_j_hat_bar();
      report.phases.push_back(phase_report);
    }

    if (resolved.kind == "drift" && resolved.restore_at_drift) {
      // Exercise the checkpoint surface at the drift point: snapshot the
      // live session, drop it, and carry on from the restored twin. The
      // restore contract (docs/DESIGN.md §6/§10) makes this bit-identical
      // to continuing the original — restore_at_drift on/off produce the
      // same report bytes, which tests/test_scenario.cpp locks.
      const SessionCheckpoint checkpoint = session->snapshot();
      auto restored = Session::restore(*engine, **learner, checkpoint);
      if (!restored) return restored.error();
      session = std::move(restored);
    }

    FroteResult result = std::move(*session).result();
    active = std::move(result.augmented);
    final_model = std::move(result.model);
  }

  report.rows_final = active.size();
  try {
    report.rules = rule_reports(active_rules, active, *final_model, threads);
  } catch (const Error& e) {
    return FroteError::invalid_argument(std::string("rule report: ") +
                                        e.what());
  }
  if (resolved.group_report.has_value()) {
    auto groups = group_deltas(*resolved.group_report, *input, **learner,
                               *final_model, threads, report.group_gap);
    if (!groups) return groups.error();
    report.groups = std::move(*groups);
  }
  report.dataset_digest = hex64(dataset_digest(active));
  check_expected(resolved, report);
  return report;
}

// ---------------------------------------------------------------------------
// Serving bridge

Expected<EngineSpec, FroteError> scenario_session_spec(
    const ScenarioSpec& spec, std::optional<std::uint64_t> seed) {
  if (spec.generator.label_noise.has_value() ||
      !spec.generator.class_weights.empty()) {
    return FroteError::invalid_argument(
        "scenario '" + spec.name +
        "' uses generator overrides a DatasetSpec cannot express; use "
        "scenario.run instead of session.create");
  }
  EngineSpec out = spec.engine;
  if (seed.has_value()) out.seed = *seed;
  DatasetSpec dataset;
  dataset.kind = "synthetic";
  dataset.name = spec.generator.name;
  dataset.size = spec.generator.size;
  dataset.seed = seed.value_or(spec.generator.seed);
  out.dataset = std::move(dataset);
  return out;
}

// ---------------------------------------------------------------------------
// Built-in scenario families

const std::vector<std::pair<std::string, std::string>>&
builtin_scenario_documents() {
  static const std::vector<std::pair<std::string, std::string>> kBuiltins = {
      {"multiclass_wine", R"json({
  "format": "frote.scenario_spec", "version": 1,
  "name": "multiclass_wine",
  "kind": "static",
  "description": "7-class feedback rules end-to-end: GBDT + IP selection on the Wine Quality stand-in, with a probabilistic two-class outcome rule.",
  "generator": {"name": "wine quality (white)", "size": 300, "seed": 42},
  "engine": {
    "format": "frote.engine_spec", "version": 1,
    "tau": 8, "q": 0.4, "k": 3, "seed": 42,
    "selector": "ip",
    "learner": {"name": "gbdt", "fast": true},
    "rules": [
      "IF alcohol > 12 THEN class = q7",
      "IF volatile_acidity > 0.4 AND alcohol < 9.8 THEN class = q4",
      "IF residual_sugar > 8 THEN Y ~ [q5: 0.5, q6: 0.5]"
    ]
  },
  "expected": {"min_instances_added": 1, "min_j_bar_gain": 0.0}
})json"},
      {"drift_adult", R"json({
  "format": "frote.scenario_spec", "version": 1,
  "name": "drift_adult",
  "kind": "drift",
  "description": "Rows and feedback rules arrive over time: three drift points replayed through Session::step with the online-proxy selector, snapshot/restore exercised at each boundary.",
  "generator": {"name": "adult", "size": 200, "seed": 42},
  "engine": {
    "format": "frote.engine_spec", "version": 1,
    "tau": 4, "q": 0.6, "k": 3, "seed": 42,
    "selector": "online-proxy",
    "learner": {"name": "rf", "fast": true},
    "rules": []
  },
  "phases": [
    {"arrive_rows": 60,
     "rules": ["IF hours_per_week > 50 THEN class = >50K"],
     "steps": 4},
    {"arrive_rows": 60,
     "rules": ["IF education = 'advanced' THEN class = >50K"],
     "steps": 4},
    {"arrive_rows": 60,
     "rules": ["IF age > 55 AND capital_gain < 1000 THEN class = <=50K"],
     "steps": 4}
  ],
  "restore_at_drift": true,
  "expected": {"min_instances_added": 1}
})json"},
      {"fairness_adult", R"json({
  "format": "frote.scenario_spec", "version": 1,
  "name": "fairness_adult",
  "kind": "static",
  "description": "Repair scenario: group-conditional relabel rules push the favorable outcome toward the under-represented group; the report carries per-group favorable rates before and after.",
  "generator": {"name": "adult", "size": 250, "seed": 42},
  "engine": {
    "format": "frote.engine_spec", "version": 1,
    "tau": 8, "q": 0.5, "k": 3, "seed": 42,
    "selector": "ip",
    "learner": {"name": "rf", "fast": true},
    "rules": [
      "IF sex = 'female' AND education_num > 11 THEN class = >50K",
      "IF sex = 'female' AND hours_per_week > 45 THEN class = >50K"
    ]
  },
  "group_report": {"feature": "sex", "favorable": ">50K"},
  "expected": {"min_instances_added": 1, "max_group_gap": 0.75}
})json"},
  };
  return kBuiltins;
}

}  // namespace frote
