// ScenarioSpec — a complete, replayable workload as one JSON document.
//
// The harness exercised one shape of problem; a scenario packages the whole
// experiment — generator config, engine knobs, feedback-rule text, an
// optional drift schedule and an expected-outcome bundle — behind the spec
// path, resolved through the string→scenario registry (core/registry.hpp),
// so opening a new workload is a JSON document plus one registry entry:
//
//   {
//     "format": "frote.scenario_spec", "version": 1,
//     "name": "multiclass_wine", "kind": "static",
//     "generator": {"name": "wine quality (white)", "size": 300, "seed": 42},
//     "engine": { ... frote.engine_spec (no dataset; rules = rule text) ... },
//     "group_report": {"feature": "sex", "favorable": ">50K"},
//     "expected": {"min_j_bar_gain": 0.0, "min_instances_added": 1}
//   }
//
// `kind` selects the replay shape. "static" runs one Session over the
// generated dataset. "drift" replays a stream: `phases` arrive one at a
// time, each appending freshly generated rows and activating additional
// rules, driven through Session::step with snapshot()/restore() exercised
// at every drift point (restore is bit-identical, so a drifting run equals
// its uninterrupted twin — tests/test_scenario.cpp locks this).
//
// Everything downstream of the document is deterministic: the same spec +
// seed produces a byte-identical ScenarioReport JSON at any thread count
// (util/parallel.hpp substrate). Version / unknown-keys policy is inherited
// from docs/DESIGN.md §6: unknown keys ignored, missing keys take defaults,
// a newer "version" is refused with a typed error.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "frote/core/spec.hpp"
#include "frote/util/json.hpp"

namespace frote {

/// Synthetic-generator configuration — DatasetSpec "synthetic" generalized.
/// `label_noise` / `class_weights` override the named dataset's blueprint
/// (data/generators.hpp); unset means the blueprint default, and the JSON
/// writer omits them, so default-configured generators round-trip
/// byte-identically with plain DatasetSpec synthetic references.
struct GeneratorSpec {
  std::string name = "adult";
  std::size_t size = 0;            // 0 = the paper's instance count
  std::uint64_t seed = 42;
  std::optional<double> label_noise;    // [0, 1)
  std::vector<double> class_weights;    // empty = blueprint default

  JsonValue to_json() const;
  static Expected<GeneratorSpec, FroteError> from_json(const JsonValue& json);
};

/// Materialise the generator. Typed errors: kUnknownComponent for an
/// unregistered dataset name, kInvalidConfig for override violations.
Expected<Dataset> generate_dataset(const GeneratorSpec& spec);

/// The schema the generator would produce, without generating rows — the
/// cheap surface ScenarioSpec::from_json validates rule text against.
Expected<Schema> generator_schema(const GeneratorSpec& spec);

/// One drift step: `arrive_rows` freshly generated rows are appended to D̂
/// (an independent batch drawn from the generator's blueprint under a
/// derived seed — a stream prefix would re-standardize and relabel) and
/// `rules` join the active feedback-rule set, then the session advances
/// `steps` iterations (0 = until the engine's stopping criterion fires).
struct ScenarioPhase {
  std::size_t arrive_rows = 0;
  std::vector<std::string> rules;
  std::size_t steps = 0;
};

/// Ask the report for per-group deltas: for every category of the (nominal)
/// `feature`, the rate at which the baseline model (trained on the raw
/// input dataset) and the final edited model predict the `favorable` class.
struct GroupReportSpec {
  std::string feature;
  std::string favorable;

  JsonValue to_json() const;
};

/// Expected-outcome bundle: bounds the report is checked against. Unset
/// fields are not checked. Failures do not fail run_scenario — they are
/// recorded in ScenarioReport::expected_failures so a grid over scenarios
/// reports every miss instead of aborting on the first.
struct ExpectedOutcome {
  std::optional<double> min_final_j_bar;
  std::optional<double> min_j_bar_gain;        // final − initial Ĵ̄
  std::optional<std::uint64_t> min_instances_added;
  std::optional<double> max_group_gap;         // favorable-rate spread after

  bool any() const {
    return min_final_j_bar.has_value() || min_j_bar_gain.has_value() ||
           min_instances_added.has_value() || max_group_gap.has_value();
  }
  JsonValue to_json() const;
};

struct ScenarioSpec {
  static constexpr std::uint64_t kFormatVersion = 1;

  std::string name;
  std::string kind = "static";     // "static" | "drift"
  std::string description;
  GeneratorSpec generator;
  /// Engine knobs + the (initial) feedback rules, as an embedded
  /// frote.engine_spec document. Its `dataset` field must be unset — the
  /// generator is the scenario's only input channel.
  EngineSpec engine;
  /// Drift schedule; required non-empty for kind "drift", forbidden for
  /// "static".
  std::vector<ScenarioPhase> phases;
  /// Exercise snapshot()/restore() at every drift point (default). Both
  /// settings produce byte-identical reports — restore is exact.
  bool restore_at_drift = true;
  std::optional<GroupReportSpec> group_report;
  ExpectedOutcome expected;

  /// from_json validates the whole document — kind/phase shape, rule text
  /// parsed against the generator's schema, group feature/class existence,
  /// override bounds — so a spec that parses is a spec that runs.
  JsonValue to_json() const;
  static Expected<ScenarioSpec, FroteError> from_json(const JsonValue& json);

  std::string to_json_text(int indent = 2) const;
  static Expected<ScenarioSpec, FroteError> parse(std::string_view json_text);
};

/// Per-run overrides, the RunPlan grid axes: `seed` reseeds the whole
/// scenario (generator and engine), `learner`/`selector` swap the engine's
/// components by registry name, `threads` overrides the engine thread count
/// (never the bytes of the result).
struct ScenarioRunOptions {
  std::optional<std::uint64_t> seed;
  std::string learner;     // "" = the spec's
  std::string selector;    // "" = the spec's
  int threads = -1;        // -1 = the spec's; 0 ⇒ FROTE_NUM_THREADS
};

struct ScenarioRuleReport {
  std::string rule;          // textual form
  std::size_t covered = 0;   // |cov(s, D̂_final)|
  double mra = 0.0;          // agreement of the final model on the cover
};

struct ScenarioPhaseReport {
  std::size_t rows_arrived = 0;
  std::size_t rules_active = 0;
  std::size_t steps_run = 0;
  std::size_t iterations_accepted = 0;
  std::size_t rows_total = 0;    // |D̂| at phase end
  double j_bar = 0.0;            // best Ĵ̄ within the phase
};

struct ScenarioGroupReport {
  std::string group;
  std::size_t rows = 0;              // group size in the input dataset
  double favorable_before = 0.0;     // baseline model's favorable rate
  double favorable_after = 0.0;      // final model's favorable rate
};

/// The result document (format "frote.scenario_result"): deterministic —
/// no wall-clock, no environment — so grids diff byte-for-byte against
/// goldens and threads 1 ≡ threads N holds all the way to the file.
struct ScenarioReport {
  std::string scenario;
  std::string kind;
  std::uint64_t seed = 0;
  std::size_t rows_initial = 0;
  std::size_t rows_final = 0;
  std::size_t instances_added = 0;
  std::size_t iterations_run = 0;
  std::size_t iterations_accepted = 0;
  double initial_j_bar = 0.0;    // Ĵ̄ of the initial model on D̂_0
  double final_j_bar = 0.0;      // best Ĵ̄ reached
  std::vector<ScenarioRuleReport> rules;
  std::vector<ScenarioPhaseReport> phases;   // drift runs
  std::vector<ScenarioGroupReport> groups;   // group_report scenarios
  /// Spread of favorable_after across groups (max − min); 0 without groups.
  double group_gap = 0.0;
  bool expected_ok = true;
  std::vector<std::string> expected_failures;
  /// FNV-1a 64 of the final D̂ (hex) — the byte-identity witness.
  std::string dataset_digest;

  JsonValue to_json() const;
  std::string to_json_text(int indent = 2) const;
};

/// The spec run_scenario actually executes after per-run overrides are
/// folded in — exposed so drivers (core/runplan.cpp) can write the fully
/// resolved document (spec.json) next to the report.
Expected<ScenarioSpec> resolve_scenario(const ScenarioSpec& spec,
                                        const ScenarioRunOptions& options);

/// Replay the scenario end-to-end. The run is pure: same spec + options →
/// byte-identical report at any thread count.
Expected<ScenarioReport> run_scenario(const ScenarioSpec& spec,
                                      const ScenarioRunOptions& options = {});

/// The EngineSpec a serving daemon opens a session from (`session.create`
/// scenario ref): the scenario's engine with the generator expressed as a
/// DatasetSpec synthetic reference — the spec survives the pool's durable
/// spool and recovers after a crash like any other session. Drift scenarios
/// serve their phase-0 state (the arrival schedule is a replay-side
/// concept; `scenario.run` executes the full schedule). Fails with
/// kInvalidArgument when the generator uses blueprint overrides a
/// DatasetSpec cannot express.
Expected<EngineSpec, FroteError> scenario_session_spec(
    const ScenarioSpec& spec, std::optional<std::uint64_t> seed = {});

/// The built-in scenario families (name → ScenarioSpec JSON document),
/// seeded into the registry on first use: "multiclass_wine" (7-class
/// feedback rules through GBDT + IP selection), "drift_adult" (rows and
/// rules arriving over time through the online-proxy selector), and
/// "fairness_adult" (group-conditional relabel rules with per-group deltas
/// in the report).
const std::vector<std::pair<std::string, std::string>>&
builtin_scenario_documents();

}  // namespace frote
