// frote/frote_api.hpp — umbrella header for the FROTE library.
//
// Include this single header instead of reaching into core/*, ml/*, rules/*
// piecemeal; it is the supported public surface for applications, examples,
// and external consumers of the installed CMake package (frote::frote).
//
// ---------------------------------------------------------------------------
// MIGRATION — from the monolithic frote_edit() to Engine/Session
// ---------------------------------------------------------------------------
// frote_edit(data, learner, frs, config, on_accept) still works and is
// bit-identical for the same seed, but it is now a shim. One behavioural
// narrowing: the Builder's typed validation rejects degenerate configs the
// old code silently tolerated (k == 0, rule_confidence outside [0, 1]), so
// those now throw frote::Error instead of running with unspecified
// behaviour. The composable form:
//
//   auto engine  = frote::Engine::Builder()
//                      .rules(frs)                    // FeedbackRuleSet F
//                      .tau(30).q(0.5).k(5).seed(42)  // scalar knobs
//                      .build().value();              // Expected<Engine,...>
//   auto session = engine.open(train, learner).value();
//   session.run();                                    // or step() manually
//   frote::FroteResult result = std::move(session).result();
//
// Old FroteConfig field / callback      → new component or builder call
//   tau, q, k, eta, seed                → Builder::tau/q/k/eta/seed
//   mod_strategy                        → Builder::mod_strategy
//   selection                           → Builder::selection
//   custom_selector                     → Builder::selector(...)
//   rule_confidence                     → Builder::rule_confidence
//   accept_always = true                → Builder::acceptance(
//                                           make_shared<AlwaysAcceptPolicy>())
//                                         (or Builder::accept_always(true))
//   AcceptCallback on_accept            → ProgressObserver::on_accept via
//                                         Builder::observer(...) or
//                                         Session::add_observer(...)
//                                         (CallbackObserver wraps lambdas)
//   FroteResult::trace                  → still populated; live access via
//                                         ProgressObserver::on_step
//   loop termination (τ / q·|D|)        → StoppingCriterion; default
//                                         BudgetStoppingCriterion reproduces
//                                         the old bounds, PlateauStopping-
//                                         Criterion / AnyOfStoppingCriterion
//                                         compose extra cut-offs
//   Builder::from_config(old_config) maps an existing FroteConfig wholesale.
//
// Named components: make_named_learner("rf", ...) / make_named_selector(
// "ip", ...) in core/registry.hpp resolve the string names shared by the CLI
// and the experiment harness.
//
// Threading: Engine::Builder::threads(n), the learner configs' `threads`
// fields (or LearnerSpec::threads through the registry), and the
// FROTE_NUM_THREADS environment variable parallelise the retrain/eval hot
// paths. Output is bit-identical for every thread count — see
// util/parallel.hpp and the README's "Performance & threading" section.
//
// PR 4 (incremental session workspace) — signature/field moves:
//   GenerationContext                    → gained `SessionWorkspace*
//                                          workspace` (defaulted nullptr;
//                                          aggregate initializers keep
//                                          compiling) and GenerateConfig
//                                          gained `threads`
//   BaseInstanceSelector                 → new non-pure overload
//                                          select(..., SessionWorkspace*);
//                                          existing subclasses inherit the
//                                          delegating default and keep
//                                          working unchanged
//   evaluate_objective / train_j_hat_bar → new overloads taking
//                                          (PredictionCache&, model_stamp);
//                                          the old signatures are unchanged
//   KnnIndex                             → new try_append(data, distance)
//                                          (default: refuse, caller
//                                          rebuilds); BruteKnn/BallTreeKnn
//                                          absorb appended rows
//   MixedDistance                        → new from_moments(schema,
//                                          ColumnMoments) and same_scales()
//   Dataset                              → staged appends (stage_rows/
//                                          commit/rollback/reserve_rows),
//                                          change tracking (uid/version/
//                                          append_epoch/row_id), raw_values/
//                                          raw_labels; *copies now take a
//                                          fresh uid and are counted by
//                                          Dataset::copy_count()*
//   Session                              → exposes workspace(); internally
//                                          stages candidate batches in
//                                          place (no per-step dataset copy)
//
// PR 5 (declarative run specs + checkpointable sessions) — additions:
//   in-process Builder calls only        → EngineSpec (core/spec.hpp): the
//                                          run as a JSON document;
//                                          Engine::Builder::from_spec(spec,
//                                          schema) resolves it through the
//                                          registry, Engine::to_spec()
//                                          inverts it losslessly
//   Builder::selection(enum) /           → Builder::selector("ip") — any
//   Builder::selector(instance)            registry name, resolved at
//                                          build() against the engine's own
//                                          rule set (online-proxy included;
//                                          no dangling rule-set references)
//   hand-built StoppingCriterion trees   → StoppingSpec {budget | plateau |
//                                          any_of} via make_spec_stopping
//   long-lived in-process Session only   → Session::snapshot() /
//                                          Session::restore(engine,
//                                          learner, ckpt): serialisable
//                                          checkpoints; resume is
//                                          bit-identical to an
//                                          uninterrupted run
//   per-experiment driver loops          → RunPlan + execute_plan
//                                          (core/runplan.hpp) and the
//                                          frote_run CLI: declarative
//                                          learner/selector/seed grids run
//                                          concurrently with per-run
//                                          artifacts and --resume
//   FeedbackRule::to_string              → numeric thresholds/probabilities
//                                          now print with shortest
//                                          round-trip precision (rule text
//                                          is a persistence format; parse ∘
//                                          print is exact)
//   (new) util/json.hpp                  → vendored strict RFC 8259 JSON
//                                          with bit-exact double round-trip
//
// PR 6 (frote_serve daemon + session pool) — additions:
//   one Session per process              → SessionPool (core/
//                                          session_pool.hpp): a multi-
//                                          tenant table of sessions, each
//                                          live in memory or LRU-evicted to
//                                          a checkpoint spool and restored
//                                          transparently (byte-identical
//                                          responses either way)
//   in-process API only                  → the frote_serve daemon: line-
//                                          delimited JSON-RPC 2.0 over
//                                          stdio or the vendored HTTP/1.1
//                                          listener (frote/net/http.hpp,
//                                          frote/net/jsonrpc.hpp); see
//                                          docs/DESIGN.md §7 for the wire
//                                          contract
//   runplan.cpp-local file helpers       → util/fsio.hpp:
//                                          write_file_atomic / read_file,
//                                          shared by the run driver and the
//                                          checkpoint spool
//
// PR 7 (sharded columnar data plane) — additions; all bit-identical to the
// flat layout for every geometry, thread and shard count:
//   one contiguous values vector         → ChunkStore (data/chunks.hpp):
//                                          sealed immutable chunks +
//                                          mutable tail behind Dataset;
//                                          Dataset::set_storage(
//                                          StorageOptions{chunk_rows,
//                                          mmap}), storage(), chunk_count(),
//                                          mapped_chunk_count();
//                                          raw_values() is now gated on
//                                          values_contiguous()
//   DatasetSpec                          → new `chunk_rows` / `mmap` fields
//                                          (absent from JSON at defaults;
//                                          old specs round-trip unchanged),
//                                          applied by load_spec_dataset and
//                                          recorded in checkpoints
//   KnnIndex::query (virtual)            → non-virtual query() over the new
//                                          virtual query_squared(); engines
//                                          compose on squared distances so
//                                          merging cannot re-round a tie;
//                                          new try_refit(data, distance)
//                                          for same-rows rescale
//   make_knn_index two-tier choice       → third tier: ShardedKnnIndex
//                                          (knn/sharded.hpp) past
//                                          KnnIndexConfig::shard_min_rows;
//                                          config gains shard_min_rows /
//                                          shard_target_rows / shards;
//                                          make_single_knn_index() is the
//                                          old chooser
//   server.stats counters only           → + per-session `sessions` array:
//                                          {session, state, rows, chunks}
//
// PR 8 (fault injection + crash-safe serving) — additions; the clean-path
// bytes of every artifact reader/writer are unchanged except that durable
// files carry a trailing integrity-footer line:
//   write_file_atomic (tmp+rename only)  → + fsync(file) before and
//                                          fsync(parent dir) after the
//                                          rename (crash-durable commit);
//                                          util/fsio.hpp also gains
//                                          write_file_durable /
//                                          read_file_validated (kOk,
//                                          kMissing, kCorrupt) /
//                                          quarantine_file — checkpoints
//                                          and the serve spool validate on
//                                          read, corrupt files move to
//                                          <name>.corrupt
//   (new) util/faultsim.hpp              → deterministic fault injection:
//                                          named points, nth=K / prob=P
//                                          schedules pure in (seed, point,
//                                          hit), fail/kill actions, armed
//                                          via FROTE_FAULTS or --faults;
//                                          disarmed cost is one relaxed
//                                          atomic load
//   (new) util/hash.hpp                  → Fnv1a64 shared by
//                                          dataset_digest and the
//                                          integrity footer
//   RpcErrorCode                         → + kSessionUnrecoverable (-32002)
//                                          and kOverloaded (-32005, error
//                                          data carries retry_after_ms);
//                                          rpc_error_line gains a data
//                                          overload
//   net::serve(handler)                  → net::serve(handler, HttpLimits
//                                          {max_body_bytes,
//                                          max_header_bytes,
//                                          read_timeout_ms}): 408 on
//                                          stalled reads, 431/413 on
//                                          oversized heads/bodies
//   SessionPool::Config                  → + max_sessions (admission cap;
//                                          max_live doubles as the cap
//                                          when there is no spool);
//                                          server.stats gains
//                                          spool_failures
//   RunPlanOptions                       → + retries (per-run restart with
//                                          deterministic backoff; also
//                                          frote_run --retries and
//                                          frote_serve --drive --retries)
//
// PR 9 (incremental learners) — the accept path is O(appended), not
// O(retrain); exact names stay bitwise exact (docs/DESIGN.md §10):
//   retrain-per-candidate: train(data)   → Learner::update(previous, data,
//                                          trained_rows); base-class default
//                                          is train(data), the RF override
//                                          clones trees whose replayed
//                                          bootstrap stream is provably
//                                          unchanged — update ≡ train
//                                          bitwise for exact learner names
//   (new) registry names                 → "lr_warm" / "gbdt_additive":
//                                          opt-in *approximate* warm starts
//                                          (previous weights / additive
//                                          rounds); exact names never
//                                          change behaviour
//   per-accept kNN re-query              → SessionWorkspace::neighborhoods():
//                                          certified, padded k+1 neighbor
//                                          lists that survive accepted appends
//                                          (decaying outside-distance bound;
//                                          failures fall back to real
//                                          queries); neighborhood_queries()
//                                          is the observable
//   SessionCheckpoint v1                 → v2: + model_updates +
//                                          dataset_digest; a verified digest
//                                          skips the restore-time Ĵ̄
//                                          recompute (mismatch falls back to
//                                          the v1 cross-check); v1 files
//                                          still parse
//   Session::restore(engine, l, ckpt)    → + overload taking
//                                          SessionRestoreOptions{warm_model,
//                                          warm_model_version}: installed
//                                          only when digest and version
//                                          match — pool evict/hydrate
//                                          round-trips retrain nothing;
//                                          Session gains model_updates() /
//                                          model_version() /
//                                          release_model() &&
//   server.stats sessions rows           → + accepts / rejects /
//                                          model_updates per session
//
// PR 10 (scenario registry) — whole workloads behind the spec path:
//   (new) core/scenario.hpp              → ScenarioSpec (format
//                                          "frote.scenario_spec"): generator
//                                          config + engine knobs + rule text
//                                          + optional drift schedule /
//                                          group report / expected-outcome
//                                          bundle in one JSON document;
//                                          run_scenario() replays it
//                                          deterministically into a
//                                          ScenarioReport (format
//                                          "frote.scenario_result", byte-
//                                          identical at every thread count)
//   ad-hoc workload wiring               → make_named_scenario /
//                                          register_scenario /
//                                          registered_scenario_names
//                                          (core/registry.hpp): a new
//                                          workload is a JSON document plus
//                                          one registry entry
//   DatasetSpec "synthetic" ad-hoc path  → GeneratorSpec is the one
//                                          synthesis path (load_spec_dataset
//                                          delegates to generate_dataset);
//                                          generators gain optional
//                                          label_noise / class_weights
//                                          overrides and dataset_schema()
//   RunPlan base-spec grids only         → grid.scenarios axis ("base"
//                                          becomes optional): scenario runs
//                                          write the resolved scenario
//                                          spec.json + ScenarioReport
//                                          result.json; RunPlan::Run gains
//                                          scenario / learner_override /
//                                          selector_override / seed
//   frote_serve spec-only creation       → session.create accepts
//                                          {"scenario": name, "seed": N}
//                                          (via scenario_session_spec); new
//                                          scenario.list / scenario.run
//                                          methods
// ---------------------------------------------------------------------------
#pragma once

// Core algorithm: Engine/Session, pipeline stages, the frote_edit shim,
// audit lineage and budget-inflection analysis. The declarative layer —
// EngineSpec run specs, session checkpoints, run plans — lives alongside.
#include "frote/core/audit.hpp"
#include "frote/core/base_population.hpp"
#include "frote/core/checkpoint.hpp"
#include "frote/core/engine.hpp"
#include "frote/core/frote.hpp"
#include "frote/core/generate.hpp"
#include "frote/core/inflection.hpp"
#include "frote/core/online_proxy.hpp"
#include "frote/core/runplan.hpp"
#include "frote/core/scenario.hpp"
#include "frote/core/selection.hpp"
#include "frote/core/session_pool.hpp"
#include "frote/core/spec.hpp"
#include "frote/core/stages.hpp"
#include "frote/core/workspace.hpp"

// Serving layer: the JSON-RPC envelope and the vendored HTTP transport
// behind tools/frote_serve (docs/DESIGN.md §7).
#include "frote/net/http.hpp"
#include "frote/net/jsonrpc.hpp"

// Data handling: schema-typed datasets, CSV I/O, splits, UCI-style
// generators.
#include "frote/data/csv.hpp"
#include "frote/data/dataset.hpp"
#include "frote/data/generators.hpp"
#include "frote/data/schema.hpp"
#include "frote/data/split.hpp"

// Black-box learners and bundled model implementations.
#include "frote/ml/decision_tree.hpp"
#include "frote/ml/gbdt.hpp"
#include "frote/ml/knn_classifier.hpp"
#include "frote/ml/logistic_regression.hpp"
#include "frote/ml/model.hpp"
#include "frote/ml/naive_bayes.hpp"
#include "frote/ml/random_forest.hpp"

// Feedback-rule language: predicates/clauses/rules, parsing, induction,
// perturbation, conflict resolution.
#include "frote/rules/induction.hpp"
#include "frote/rules/parser.hpp"
#include "frote/rules/perturb.hpp"
#include "frote/rules/rule.hpp"
#include "frote/rules/ruleset.hpp"

// Evaluation metrics and the Overlay baseline.
#include "frote/baselines/overlay.hpp"
#include "frote/metrics/metrics.hpp"

// Experiment harness, paper learner kinds, and the named-component registry.
#include "frote/exp/harness.hpp"
#include "frote/exp/learners.hpp"
#include "frote/core/registry.hpp"

// Utilities: typed errors/Expected, deterministic RNG, the deterministic
// parallel subsystem (FROTE_NUM_THREADS / Engine::Builder::threads — output
// is bit-identical for every thread count), text tables.
#include "frote/util/error.hpp"
#include "frote/util/json.hpp"
#include "frote/util/parallel.hpp"
#include "frote/util/rng.hpp"
#include "frote/util/table.hpp"
