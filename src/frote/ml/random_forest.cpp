#include "frote/ml/random_forest.hpp"

#include <cmath>

#include "frote/util/parallel.hpp"

namespace frote {

std::vector<double> RandomForestModel::predict_proba(
    std::span<const double> row) const {
  std::vector<double> out;
  predict_proba_into(row, out);
  return out;
}

void RandomForestModel::predict_proba_into(std::span<const double> row,
                                           std::vector<double>& out) const {
  FROTE_CHECK(!trees_.empty());
  out.assign(num_classes(), 0.0);
  for (const auto& tree : trees_) {
    const auto& dist = tree->leaf_distribution(row);
    for (std::size_t c = 0; c < out.size(); ++c) out[c] += dist[c];
  }
  const double inv = 1.0 / static_cast<double>(trees_.size());
  for (double& v : out) v *= inv;
}

std::unique_ptr<Model> RandomForestLearner::train(const Dataset& data) const {
  FROTE_CHECK_MSG(!data.empty(), "cannot train on empty dataset");
  DecisionTreeConfig tree_config;
  tree_config.max_depth = config_.max_depth;
  tree_config.min_samples_leaf = config_.min_samples_leaf;
  tree_config.numeric_cuts = config_.numeric_cuts;
  tree_config.max_features =
      config_.max_features != 0
          ? config_.max_features
          : std::max<std::size_t>(
                1, static_cast<std::size_t>(std::sqrt(
                       static_cast<double>(data.num_features()))));
  DecisionTreeLearner tree_learner(tree_config);

  // Each tree owns an independent derive_seed stream, so the ensemble is a
  // pure function of (seed, num_trees): trees can train concurrently and be
  // emitted in tree order, bit-identical at every thread count.
  std::vector<std::unique_ptr<DecisionTreeModel>> trees(config_.num_trees);
  parallel_for(config_.num_trees, 1, config_.threads,
               [&](std::size_t begin, std::size_t end) {
                 for (std::size_t t = begin; t < end; ++t) {
                   Rng rng(derive_seed(config_.seed, t));
                   // Bootstrap sample of size n.
                   std::vector<std::size_t> sample(data.size());
                   for (auto& idx : sample) idx = rng.index(data.size());
                   trees[t] = tree_learner.train_weighted(data, sample, rng);
                 }
               });
  return std::make_unique<RandomForestModel>(std::move(trees),
                                             data.num_classes());
}

}  // namespace frote
