#include "frote/ml/random_forest.hpp"

#include <cmath>

#include "frote/util/parallel.hpp"

namespace frote {

std::vector<double> RandomForestModel::predict_proba(
    std::span<const double> row) const {
  std::vector<double> out;
  predict_proba_into(row, out);
  return out;
}

void RandomForestModel::predict_proba_into(std::span<const double> row,
                                           std::vector<double>& out) const {
  FROTE_CHECK(!trees_.empty());
  out.assign(num_classes(), 0.0);
  for (const auto& tree : trees_) {
    const auto& dist = tree->leaf_distribution(row);
    for (std::size_t c = 0; c < out.size(); ++c) out[c] += dist[c];
  }
  const double inv = 1.0 / static_cast<double>(trees_.size());
  for (double& v : out) v *= inv;
}

DecisionTreeLearner RandomForestLearner::tree_learner(
    const Dataset& data) const {
  DecisionTreeConfig tree_config;
  tree_config.max_depth = config_.max_depth;
  tree_config.min_samples_leaf = config_.min_samples_leaf;
  tree_config.numeric_cuts = config_.numeric_cuts;
  tree_config.max_features =
      config_.max_features != 0
          ? config_.max_features
          : std::max<std::size_t>(
                1, static_cast<std::size_t>(std::sqrt(
                       static_cast<double>(data.num_features()))));
  return DecisionTreeLearner(tree_config);
}

std::unique_ptr<Model> RandomForestLearner::train(const Dataset& data) const {
  FROTE_CHECK_MSG(!data.empty(), "cannot train on empty dataset");
  DecisionTreeLearner learner = tree_learner(data);

  // Each tree owns an independent derive_seed stream, so the ensemble is a
  // pure function of (seed, num_trees): trees can train concurrently and be
  // emitted in tree order, bit-identical at every thread count.
  std::vector<std::unique_ptr<DecisionTreeModel>> trees(config_.num_trees);
  std::vector<TreeBootstrap> bootstraps(config_.num_trees);
  parallel_for(config_.num_trees, 1, config_.threads,
               [&](std::size_t begin, std::size_t end) {
                 for (std::size_t t = begin; t < end; ++t) {
                   Rng rng(derive_seed(config_.seed, t));
                   // Bootstrap sample of size n.
                   std::vector<std::size_t> sample(data.size());
                   for (auto& idx : sample) idx = rng.index(data.size());
                   bootstraps[t].after_sample = rng.state();
                   trees[t] = learner.train_weighted(data, sample, rng);
                   bootstraps[t].sample = std::move(sample);
                 }
               });
  auto model = std::make_unique<RandomForestModel>(std::move(trees),
                                                   data.num_classes());
  model->set_bootstraps(std::move(bootstraps), config_.seed);
  return model;
}

std::unique_ptr<Model> RandomForestLearner::update(
    const Model& previous, const Dataset& data,
    std::size_t trained_rows) const {
  FROTE_CHECK_MSG(!data.empty(), "cannot train on empty dataset");
  const auto* prev = dynamic_cast<const RandomForestModel*>(&previous);
  if (prev == nullptr || prev->num_trees() != config_.num_trees ||
      prev->num_classes() != data.num_classes() || !prev->has_bootstraps() ||
      prev->bootstrap_seed() != config_.seed || trained_rows > data.size()) {
    return train(data);
  }
  DecisionTreeLearner learner = tree_learner(data);

  // Redraw each tree's bootstrap under the new row count. When both the
  // sample and the post-sample RNG state come out identical to the recorded
  // draw, retraining would read the same rows (all inside the unchanged
  // [0, trained_rows) prefix) with the same RNG — clone instead. Otherwise
  // retrain that tree exactly as train() would. Either way tree t is the
  // same bits train(data) emits.
  std::vector<std::unique_ptr<DecisionTreeModel>> trees(config_.num_trees);
  std::vector<TreeBootstrap> bootstraps(config_.num_trees);
  parallel_for(
      config_.num_trees, 1, config_.threads,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t t = begin; t < end; ++t) {
          Rng rng(derive_seed(config_.seed, t));
          std::vector<std::size_t> sample(data.size());
          for (auto& idx : sample) idx = rng.index(data.size());
          const TreeBootstrap& recorded = prev->bootstraps()[t];
          bootstraps[t].after_sample = rng.state();
          if (sample == recorded.sample &&
              bootstraps[t].after_sample == recorded.after_sample) {
            trees[t] = prev->tree(t).clone();
          } else {
            trees[t] = learner.train_weighted(data, sample, rng);
          }
          bootstraps[t].sample = std::move(sample);
        }
      });
  auto model = std::make_unique<RandomForestModel>(std::move(trees),
                                                   data.num_classes());
  model->set_bootstraps(std::move(bootstraps), config_.seed);
  return model;
}

}  // namespace frote
