#include "frote/ml/random_forest.hpp"

#include <cmath>

namespace frote {

std::vector<double> RandomForestModel::predict_proba(
    std::span<const double> row) const {
  FROTE_CHECK(!trees_.empty());
  std::vector<double> acc(num_classes(), 0.0);
  for (const auto& tree : trees_) {
    const auto p = tree->predict_proba(row);
    for (std::size_t c = 0; c < acc.size(); ++c) acc[c] += p[c];
  }
  const double inv = 1.0 / static_cast<double>(trees_.size());
  for (double& v : acc) v *= inv;
  return acc;
}

std::unique_ptr<Model> RandomForestLearner::train(const Dataset& data) const {
  FROTE_CHECK_MSG(!data.empty(), "cannot train on empty dataset");
  DecisionTreeConfig tree_config;
  tree_config.max_depth = config_.max_depth;
  tree_config.min_samples_leaf = config_.min_samples_leaf;
  tree_config.numeric_cuts = config_.numeric_cuts;
  tree_config.max_features =
      config_.max_features != 0
          ? config_.max_features
          : std::max<std::size_t>(
                1, static_cast<std::size_t>(std::sqrt(
                       static_cast<double>(data.num_features()))));
  DecisionTreeLearner tree_learner(tree_config);

  Rng rng(config_.seed);
  std::vector<std::unique_ptr<DecisionTreeModel>> trees;
  trees.reserve(config_.num_trees);
  for (std::size_t t = 0; t < config_.num_trees; ++t) {
    // Bootstrap sample of size n.
    std::vector<std::size_t> sample(data.size());
    for (auto& idx : sample) idx = rng.index(data.size());
    trees.push_back(tree_learner.train_weighted(data, sample, rng));
  }
  return std::make_unique<RandomForestModel>(std::move(trees),
                                             data.num_classes());
}

}  // namespace frote
