// Black-box classification interfaces.
//
// FROTE treats the training algorithm A as a black box (§1): anything that
// maps a Dataset to a Model can be edited. `Learner` is A; `Model` is M_D.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "frote/data/dataset.hpp"

namespace frote {

/// Index of the first maximum — the tie rule every predict path shares.
inline int argmax_class(const std::vector<double>& proba) {
  std::size_t best = 0;
  for (std::size_t c = 1; c < proba.size(); ++c) {
    if (proba[c] > proba[best]) best = c;
  }
  return static_cast<int>(best);
}

/// A trained classifier over raw (schema-typed) rows.
class Model {
 public:
  virtual ~Model() = default;

  /// Predicted class label for one row.
  virtual int predict(std::span<const double> row) const;

  /// Class-probability vector (sums to 1) for one row.
  virtual std::vector<double> predict_proba(
      std::span<const double> row) const = 0;

  /// Batch-friendly form of predict_proba: writes the class-probability
  /// vector into `out` (resized to num_classes()). The default wraps
  /// predict_proba; models override it to hoist per-row allocations out of
  /// the evaluation sweeps. Must be safe to call concurrently on a const
  /// model — the batch entry points below fan rows out across threads.
  virtual void predict_proba_into(std::span<const double> row,
                                  std::vector<double>& out) const;

  std::size_t num_classes() const { return num_classes_; }

  /// Predicted labels for every row of a dataset. Chunked over rows via the
  /// deterministic parallel subsystem; `threads` 0 defers to
  /// FROTE_NUM_THREADS (util/parallel.hpp). Identical output for any count.
  std::vector<int> predict_all(const Dataset& data, int threads = 0) const;

  /// Class probabilities for every row, row-major size() x num_classes().
  std::vector<double> predict_proba_all(const Dataset& data,
                                        int threads = 0) const;

 protected:
  explicit Model(std::size_t num_classes) : num_classes_(num_classes) {}

 private:
  std::size_t num_classes_;
};

/// A training algorithm: Dataset -> Model. Implementations must be
/// deterministic given their constructor-time seed.
class Learner {
 public:
  virtual ~Learner() = default;
  virtual std::unique_ptr<Model> train(const Dataset& data) const = 0;

  /// Incremental retrain after `data` grew by appended rows: `previous` was
  /// produced by this learner on the first `trained_rows` rows of `data`
  /// (byte-identical prefix — the FROTE accept path stages batches at the
  /// tail and never mutates committed rows). The default is a full
  /// from-scratch train, so every learner is update-correct by construction.
  /// Exact learners override this only where they can prove the result is
  /// bit-identical to train(data) (docs/DESIGN.md §10); approximate warm
  /// starts live in opt-in registry variants ("lr_warm", "gbdt_additive")
  /// and never behind a default learner name.
  virtual std::unique_ptr<Model> update(const Model& previous,
                                        const Dataset& data,
                                        std::size_t trained_rows) const {
    (void)previous;
    (void)trained_rows;
    return train(data);
  }

  /// Short name used in experiment tables ("LR", "RF", "GBDT").
  virtual std::string name() const = 0;
};

}  // namespace frote
