// Black-box classification interfaces.
//
// FROTE treats the training algorithm A as a black box (§1): anything that
// maps a Dataset to a Model can be edited. `Learner` is A; `Model` is M_D.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "frote/data/dataset.hpp"

namespace frote {

/// A trained classifier over raw (schema-typed) rows.
class Model {
 public:
  virtual ~Model() = default;

  /// Predicted class label for one row.
  virtual int predict(std::span<const double> row) const;

  /// Class-probability vector (sums to 1) for one row.
  virtual std::vector<double> predict_proba(
      std::span<const double> row) const = 0;

  std::size_t num_classes() const { return num_classes_; }

  /// Predicted labels for every row of a dataset.
  std::vector<int> predict_all(const Dataset& data) const;

 protected:
  explicit Model(std::size_t num_classes) : num_classes_(num_classes) {}

 private:
  std::size_t num_classes_;
};

/// A training algorithm: Dataset -> Model. Implementations must be
/// deterministic given their constructor-time seed.
class Learner {
 public:
  virtual ~Learner() = default;
  virtual std::unique_ptr<Model> train(const Dataset& data) const = 0;
  /// Short name used in experiment tables ("LR", "RF", "GBDT").
  virtual std::string name() const = 0;
};

}  // namespace frote
