// Gradient-boosted decision trees — the LightGBM (Ke et al. 2017) stand-in.
//
// Second-order boosting (XGBoost/LightGBM-style gain with L2 leaf
// regularisation), leaf-wise tree growth with a max-leaves budget, logistic
// loss for binary problems and softmax (one tree per class per round) for
// multiclass. LightGBM's GOSS/EFB engineering is not reproduced — it changes
// constants, not the decision boundaries the paper's experiments depend on.
#pragma once

#include "frote/ml/model.hpp"
#include "frote/util/rng.hpp"

namespace frote {

struct GbdtConfig {
  std::size_t num_rounds = 60;
  double learning_rate = 0.1;
  std::size_t max_leaves = 15;
  std::size_t max_depth = 6;
  double lambda = 1.0;          // L2 on leaf values
  double min_child_weight = 1e-3;
  std::size_t min_samples_leaf = 5;
  std::size_t numeric_cuts = 24;
  std::uint64_t seed = 42;
  /// Threads for the gradient sweep and per-round split search;
  /// 0 ⇒ FROTE_NUM_THREADS. Deterministic for every value.
  int threads = 0;
  /// Boosting rounds GbdtAdditiveLearner::update() appends on top of the
  /// previous ensemble (ignored by the exact learner).
  std::size_t update_rounds = 5;
};

/// A single regression tree of the ensemble.
struct GbdtTree {
  struct Node {
    std::size_t feature = 0;
    double threshold = 0.0;
    bool categorical = false;   // categorical: x == threshold goes left
    int left = -1, right = -1;  // -1 ⇒ leaf
    double value = 0.0;         // leaf output
  };
  std::vector<Node> nodes;

  double predict(std::span<const double> row) const;
};

class GbdtModel : public Model {
 public:
  /// trees[round * score_dims + k] is the round's tree for score k.
  GbdtModel(std::vector<GbdtTree> trees, std::size_t num_classes,
            std::size_t score_dims, double base_score);

  std::vector<double> predict_proba(std::span<const double> row) const override;
  void predict_proba_into(std::span<const double> row,
                          std::vector<double>& out) const override;

  std::size_t num_trees() const { return trees_.size(); }
  const std::vector<GbdtTree>& trees() const { return trees_; }
  std::size_t score_dims() const { return score_dims_; }
  double base_score() const { return base_score_; }

 private:
  std::vector<GbdtTree> trees_;
  std::size_t score_dims_;  // 1 for binary, num_classes for multiclass
  double base_score_;
};

class GbdtLearner : public Learner {
 public:
  explicit GbdtLearner(GbdtConfig config = {}) : config_(config) {}

  std::unique_ptr<Model> train(const Dataset& data) const override;
  std::string name() const override { return "LGBM"; }

 private:
  GbdtConfig config_;
};

/// Opt-in approximate variant ("gbdt_additive" in the registry): train() is
/// the plain full boost, but update() keeps the previous ensemble's trees,
/// replays their scores over the grown dataset (one cheap predict sweep),
/// and boosts `update_rounds` additional rounds against the residuals — so
/// an accept costs a few rounds instead of num_rounds. The ensemble keeps
/// growing across updates and is NOT bit-identical to a cold retrain
/// (docs/DESIGN.md §10).
class GbdtAdditiveLearner : public Learner {
 public:
  explicit GbdtAdditiveLearner(GbdtConfig config = {}) : config_(config) {}

  std::unique_ptr<Model> train(const Dataset& data) const override;
  std::unique_ptr<Model> update(const Model& previous, const Dataset& data,
                                std::size_t trained_rows) const override;
  std::string name() const override { return "LGBM-additive"; }

 private:
  GbdtConfig config_;
};

}  // namespace frote
