// CART-style decision tree on raw mixed-type rows.
//
// Numeric features split on thresholds (x <= t); categorical features split
// one-vs-rest on a category code (x == c). Impurity is Gini. This is the
// base learner for RandomForest and a usable classifier on its own.
#pragma once

#include <memory>
#include <optional>

#include "frote/ml/model.hpp"
#include "frote/util/rng.hpp"

namespace frote {

struct DecisionTreeConfig {
  std::size_t max_depth = 8;
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Number of features examined per split; 0 = all (set by RandomForest to
  /// sqrt(d) for decorrelation).
  std::size_t max_features = 0;
  /// Candidate thresholds per numeric feature per node (quantile cuts);
  /// keeps split search near O(n) per node.
  std::size_t numeric_cuts = 24;
  std::uint64_t seed = 42;
};

class DecisionTreeModel : public Model {
 public:
  struct Node {
    // Internal node fields.
    std::size_t feature = 0;
    double threshold = 0.0;     // numeric: x <= threshold goes left
    bool categorical = false;   // categorical: x == threshold goes left
    int left = -1, right = -1;  // -1 ⇒ leaf
    // Leaf field: class-probability distribution.
    std::vector<double> distribution;
  };

  DecisionTreeModel(std::vector<Node> nodes, std::size_t num_classes)
      : Model(num_classes), nodes_(std::move(nodes)) {}

  std::vector<double> predict_proba(std::span<const double> row) const override;
  void predict_proba_into(std::span<const double> row,
                          std::vector<double>& out) const override;

  /// The leaf distribution `row` routes to, by reference — the
  /// allocation-free accessor RandomForest's batch predict accumulates from.
  const std::vector<double>& leaf_distribution(
      std::span<const double> row) const;

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t depth() const;

  /// Deep copy — how RandomForestLearner::update() re-emits a tree whose
  /// bootstrap stream provably did not change.
  std::unique_ptr<DecisionTreeModel> clone() const {
    return std::make_unique<DecisionTreeModel>(nodes_, num_classes());
  }

 private:
  std::vector<Node> nodes_;
};

/// Trains a single CART tree. With `sample_indices` / `sample_weights` the
/// forest can pass bootstrap samples without copying rows.
class DecisionTreeLearner : public Learner {
 public:
  explicit DecisionTreeLearner(DecisionTreeConfig config = {})
      : config_(config) {}

  std::unique_ptr<Model> train(const Dataset& data) const override;
  std::string name() const override { return "DT"; }

  /// Train on a weighted subset of rows (weights act as row multiplicities).
  std::unique_ptr<DecisionTreeModel> train_weighted(
      const Dataset& data, const std::vector<std::size_t>& indices,
      Rng& rng) const;

 private:
  DecisionTreeConfig config_;
};

}  // namespace frote
