#include "frote/ml/online_logreg.hpp"

#include <cmath>

#include "frote/ml/logistic_regression.hpp"  // softmax_inplace
#include "frote/util/rng.hpp"

namespace frote {

OnlineLogReg::OnlineLogReg(const Dataset& data, const Model& teacher,
                           OnlineLogRegConfig config)
    : Model(data.num_classes()), config_(config) {
  encoder_ = Encoder::fit(data);
  width_ = encoder_.encoded_width();
  weights_.assign(num_classes() * (width_ + 1), 0.0);
  fit(data, teacher.predict_all(data));
}

OnlineLogReg::OnlineLogReg(const Dataset& data, OnlineLogRegConfig config)
    : Model(data.num_classes()), config_(config) {
  encoder_ = Encoder::fit(data);
  width_ = encoder_.encoded_width();
  weights_.assign(num_classes() * (width_ + 1), 0.0);
  std::vector<int> labels(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) labels[i] = data.label(i);
  fit(data, labels);
}

void OnlineLogReg::fit(const Dataset& data, const std::vector<int>& labels) {
  Rng rng(config_.seed);
  std::vector<std::size_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t idx : order) {
      sgd_step(encoder_.transform(data.row(idx)), labels[idx]);
    }
  }
}

std::vector<double> OnlineLogReg::predict_proba(
    std::span<const double> row) const {
  const auto x = encoder_.transform(row);
  std::vector<double> logits(num_classes(), 0.0);
  for (std::size_t c = 0; c < num_classes(); ++c) {
    const double* w = weights_.data() + c * (width_ + 1);
    double acc = w[width_];
    for (std::size_t j = 0; j < width_; ++j) acc += w[j] * x[j];
    logits[c] = acc;
  }
  softmax_inplace(logits);
  return logits;
}

void OnlineLogReg::update(std::span<const double> row, int label) {
  sgd_step(encoder_.transform(row), label);
}

void OnlineLogReg::sgd_step(const std::vector<double>& x, int label) {
  ++step_count_;
  const double lr =
      config_.learning_rate / std::sqrt(static_cast<double>(step_count_));
  std::vector<double> probs(num_classes(), 0.0);
  for (std::size_t c = 0; c < num_classes(); ++c) {
    const double* w = weights_.data() + c * (width_ + 1);
    double acc = w[width_];
    for (std::size_t j = 0; j < width_; ++j) acc += w[j] * x[j];
    probs[c] = acc;
  }
  softmax_inplace(probs);
  for (std::size_t c = 0; c < num_classes(); ++c) {
    const double err =
        probs[c] - (static_cast<std::size_t>(label) == c ? 1.0 : 0.0);
    double* w = weights_.data() + c * (width_ + 1);
    for (std::size_t j = 0; j < width_; ++j) {
      w[j] -= lr * (err * x[j] + config_.l2 * w[j]);
    }
    w[width_] -= lr * err;
  }
}

}  // namespace frote
