#include "frote/ml/naive_bayes.hpp"

#include <cmath>

#include "frote/ml/logistic_regression.hpp"  // softmax_inplace

namespace frote {

NaiveBayesModel::NaiveBayesModel(std::size_t num_classes,
                                 std::size_t num_features)
    : Model(num_classes), classes_(num_classes),
      categorical_(num_features, false) {}

std::vector<double> NaiveBayesModel::predict_proba(
    std::span<const double> row) const {
  std::vector<double> log_posterior(classes_.size(), 0.0);
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    const auto& stats = classes_[c];
    double acc = stats.log_prior;
    std::size_t numeric_slot = 0;
    for (std::size_t f = 0; f < categorical_.size(); ++f) {
      if (categorical_[f]) {
        const auto code = static_cast<std::size_t>(row[f]);
        const auto& table = stats.log_cat[f];
        acc += code < table.size() ? table[code] : table.back();
      } else {
        const double mean = stats.mean[numeric_slot];
        const double variance = stats.variance[numeric_slot];
        const double diff = row[f] - mean;
        acc += -0.5 * (std::log(2.0 * M_PI * variance) +
                       diff * diff / variance);
        ++numeric_slot;
      }
    }
    log_posterior[c] = acc;
  }
  softmax_inplace(log_posterior);
  return log_posterior;
}

std::unique_ptr<Model> NaiveBayesLearner::train(const Dataset& data) const {
  FROTE_CHECK_MSG(!data.empty(), "cannot train on empty dataset");
  const std::size_t classes = data.num_classes();
  const std::size_t features = data.num_features();
  auto model = std::make_unique<NaiveBayesModel>(classes, features);

  std::size_t num_numeric = 0;
  for (std::size_t f = 0; f < features; ++f) {
    model->categorical_[f] = data.schema().feature(f).is_categorical();
    if (!model->categorical_[f]) ++num_numeric;
  }

  const auto class_counts = data.class_counts();
  for (std::size_t c = 0; c < classes; ++c) {
    auto& stats = model->classes_[c];
    // Laplace-smoothed prior keeps empty classes finite.
    stats.log_prior = std::log(
        (static_cast<double>(class_counts[c]) + 1.0) /
        (static_cast<double>(data.size()) + static_cast<double>(classes)));
    stats.mean.assign(num_numeric, 0.0);
    stats.variance.assign(num_numeric, config_.min_variance);
    stats.log_cat.resize(features);

    // First pass: means + category counts.
    std::vector<std::vector<double>> cat_counts(features);
    for (std::size_t f = 0; f < features; ++f) {
      if (model->categorical_[f]) {
        cat_counts[f].assign(data.schema().feature(f).cardinality(),
                             config_.laplace_alpha);
      }
    }
    std::size_t n_c = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (static_cast<std::size_t>(data.label(i)) != c) continue;
      ++n_c;
      const auto row = data.row(i);
      std::size_t numeric_slot = 0;
      for (std::size_t f = 0; f < features; ++f) {
        if (model->categorical_[f]) {
          cat_counts[f][static_cast<std::size_t>(row[f])] += 1.0;
        } else {
          stats.mean[numeric_slot++] += row[f];
        }
      }
    }
    if (n_c > 0) {
      for (double& m : stats.mean) m /= static_cast<double>(n_c);
    }
    // Second pass: variances.
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (static_cast<std::size_t>(data.label(i)) != c) continue;
      const auto row = data.row(i);
      std::size_t numeric_slot = 0;
      for (std::size_t f = 0; f < features; ++f) {
        if (model->categorical_[f]) continue;
        const double diff = row[f] - stats.mean[numeric_slot];
        stats.variance[numeric_slot] += diff * diff;
        ++numeric_slot;
      }
    }
    if (n_c > 1) {
      for (double& v : stats.variance) {
        v = std::max(config_.min_variance,
                     v / static_cast<double>(n_c - 1));
      }
    }
    // Normalise category tables to log-probabilities.
    for (std::size_t f = 0; f < features; ++f) {
      if (!model->categorical_[f]) continue;
      double total = 0.0;
      for (double count : cat_counts[f]) total += count;
      stats.log_cat[f].resize(cat_counts[f].size());
      for (std::size_t code = 0; code < cat_counts[f].size(); ++code) {
        stats.log_cat[f][code] = std::log(cat_counts[f][code] / total);
      }
    }
  }
  return model;
}

}  // namespace frote
