// k-nearest-neighbour classifier over the SMOTE-NC mixed-type metric,
// reusing the library's auto-selected kNN engine (make_knn_index: flat scan
// below the measured crossover, ball tree above). Another black-box learner
// for exercising FROTE's model-agnosticism; interesting because its decision
// boundary is *exactly* the data — editing the dataset edits the model
// one-for-one.
#pragma once

#include "frote/knn/knn.hpp"
#include "frote/ml/model.hpp"

namespace frote {

struct KnnClassifierConfig {
  std::size_t k = 5;
  /// Weight votes by inverse distance instead of uniformly.
  bool distance_weighted = false;
};

class KnnClassifierModel : public Model {
 public:
  KnnClassifierModel(const Dataset& data, KnnClassifierConfig config);

  std::vector<double> predict_proba(std::span<const double> row) const override;

 private:
  KnnClassifierConfig config_;
  std::vector<int> labels_;
  std::unique_ptr<KnnIndex> index_;
};

class KnnClassifierLearner : public Learner {
 public:
  explicit KnnClassifierLearner(KnnClassifierConfig config = {})
      : config_(config) {}

  std::unique_ptr<Model> train(const Dataset& data) const override;
  std::string name() const override { return "KNN"; }

 private:
  KnnClassifierConfig config_;
};

}  // namespace frote
