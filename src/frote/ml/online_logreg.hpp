// Online logistic regression — the supplement's Vowpal-Wabbit proxy
// (Appendix A, eq. 7): approximate the current black-box model M_D̂ by a
// parametric model M̂ trained on (D̂, M_D̂(D̂)) via SGD, then approximate the
// retrained model A(D̂ ∪ S) by *online updates* of M̂ on the generated
// instances S, avoiding a full black-box retrain per candidate evaluation.
#pragma once

#include "frote/data/encoder.hpp"
#include "frote/ml/model.hpp"

namespace frote {

struct OnlineLogRegConfig {
  std::size_t epochs = 5;       // initial distillation passes over D̂
  double learning_rate = 0.1;   // SGD step (decays 1/sqrt(t))
  double l2 = 1e-4;
  std::uint64_t seed = 42;
};

/// Mutable softmax classifier supporting per-instance updates.
class OnlineLogReg : public Model {
 public:
  /// Distill `teacher`'s predictions on `data` into a linear model.
  OnlineLogReg(const Dataset& data, const Model& teacher,
               OnlineLogRegConfig config = {});

  /// Distill hard labels from `data` itself (no teacher).
  explicit OnlineLogReg(const Dataset& data, OnlineLogRegConfig config = {});

  std::vector<double> predict_proba(std::span<const double> row) const override;

  /// One SGD step on a single (row, label) pair — the OL(M̂, S) update.
  void update(std::span<const double> row, int label);

 private:
  void fit(const Dataset& data, const std::vector<int>& labels);
  void sgd_step(const std::vector<double>& x, int label);

  Encoder encoder_;
  std::vector<double> weights_;  // classes x (width+1)
  std::size_t width_ = 0;
  OnlineLogRegConfig config_;
  std::size_t step_count_ = 0;
};

}  // namespace frote
