#include "frote/ml/knn_classifier.hpp"

namespace frote {

KnnClassifierModel::KnnClassifierModel(const Dataset& data,
                                       KnnClassifierConfig config)
    : Model(data.num_classes()), config_(config),
      index_(make_knn_index(data, MixedDistance::fit(data))) {
  FROTE_CHECK(!data.empty());
  labels_.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    labels_.push_back(data.label(i));
  }
}

std::vector<double> KnnClassifierModel::predict_proba(
    std::span<const double> row) const {
  const std::size_t k = std::min(config_.k, labels_.size());
  const auto neighbors = index_->query(row, k);
  std::vector<double> votes(num_classes(), 0.0);
  for (const auto& nb : neighbors) {
    const auto label = static_cast<std::size_t>(
        labels_[index_->dataset_index(nb.index)]);
    votes[label] += config_.distance_weighted
                        ? 1.0 / (nb.distance + 1e-9)
                        : 1.0;
  }
  double total = 0.0;
  for (double v : votes) total += v;
  if (total > 0.0) {
    for (double& v : votes) v /= total;
  } else {
    for (double& v : votes) v = 1.0 / static_cast<double>(votes.size());
  }
  return votes;
}

std::unique_ptr<Model> KnnClassifierLearner::train(const Dataset& data) const {
  FROTE_CHECK_MSG(!data.empty(), "cannot train on empty dataset");
  return std::make_unique<KnnClassifierModel>(data, config_);
}

}  // namespace frote
