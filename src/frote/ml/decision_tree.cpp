#include "frote/ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>
#include <utility>

namespace frote {

const std::vector<double>& DecisionTreeModel::leaf_distribution(
    std::span<const double> row) const {
  FROTE_CHECK(!nodes_.empty());
  int cur = 0;
  while (nodes_[static_cast<std::size_t>(cur)].left >= 0) {
    const Node& n = nodes_[static_cast<std::size_t>(cur)];
    const double x = row[n.feature];
    const bool go_left = n.categorical ? (x == n.threshold)
                                       : (x <= n.threshold);
    cur = go_left ? n.left : n.right;
  }
  return nodes_[static_cast<std::size_t>(cur)].distribution;
}

std::vector<double> DecisionTreeModel::predict_proba(
    std::span<const double> row) const {
  return leaf_distribution(row);
}

void DecisionTreeModel::predict_proba_into(std::span<const double> row,
                                           std::vector<double>& out) const {
  const auto& dist = leaf_distribution(row);
  out.assign(dist.begin(), dist.end());
}

std::size_t DecisionTreeModel::depth() const {
  // Iterative depth computation over the implicit tree.
  std::size_t max_depth = 0;
  std::vector<std::pair<int, std::size_t>> stack{{0, 0}};
  while (!stack.empty()) {
    auto [id, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const Node& n = nodes_[static_cast<std::size_t>(id)];
    if (n.left >= 0) {
      stack.push_back({n.left, d + 1});
      stack.push_back({n.right, d + 1});
    }
  }
  return max_depth;
}

namespace {

struct SplitCandidate {
  std::size_t feature = 0;
  double threshold = 0.0;
  bool categorical = false;
  double gini_gain = 0.0;
  bool valid = false;
};

double gini_impurity(std::span<const double> counts, double total) {
  if (total <= 0.0) return 0.0;
  double acc = 1.0;
  for (double c : counts) {
    const double p = c / total;
    acc -= p * p;
  }
  return acc;
}

class TreeBuilder {
 public:
  TreeBuilder(const Dataset& data, const DecisionTreeConfig& config, Rng& rng)
      : data_(data), config_(config), rng_(rng) {}

  std::vector<DecisionTreeModel::Node> build(
      const std::vector<std::size_t>& indices) {
    nodes_.clear();
    build_node(indices, 0);
    return std::move(nodes_);
  }

 private:
  int build_node(const std::vector<std::size_t>& indices, std::size_t depth) {
    const int node_id = static_cast<int>(nodes_.size());
    nodes_.push_back({});

    std::vector<double> counts(data_.num_classes(), 0.0);
    for (std::size_t idx : indices) {
      counts[static_cast<std::size_t>(data_.label(idx))] += 1.0;
    }
    const auto total = static_cast<double>(indices.size());

    const bool pure = std::any_of(counts.begin(), counts.end(), [&](double c) {
      return c == total;
    });
    SplitCandidate split;
    if (!pure && depth < config_.max_depth &&
        indices.size() >= config_.min_samples_split) {
      split = best_split(indices, counts, total);
    }

    if (!split.valid) {
      make_leaf(node_id, counts, total);
      return node_id;
    }

    std::vector<std::size_t> left_idx, right_idx;
    for (std::size_t idx : indices) {
      const double x = data_.row(idx)[split.feature];
      const bool go_left = split.categorical ? (x == split.threshold)
                                             : (x <= split.threshold);
      (go_left ? left_idx : right_idx).push_back(idx);
    }
    if (left_idx.size() < config_.min_samples_leaf ||
        right_idx.size() < config_.min_samples_leaf) {
      make_leaf(node_id, counts, total);
      return node_id;
    }

    nodes_[static_cast<std::size_t>(node_id)].feature = split.feature;
    nodes_[static_cast<std::size_t>(node_id)].threshold = split.threshold;
    nodes_[static_cast<std::size_t>(node_id)].categorical = split.categorical;
    const int left = build_node(left_idx, depth + 1);
    const int right = build_node(right_idx, depth + 1);
    nodes_[static_cast<std::size_t>(node_id)].left = left;
    nodes_[static_cast<std::size_t>(node_id)].right = right;
    return node_id;
  }

  void make_leaf(int node_id, const std::vector<double>& counts,
                 double total) {
    auto& node = nodes_[static_cast<std::size_t>(node_id)];
    node.left = node.right = -1;
    node.distribution.resize(counts.size());
    for (std::size_t c = 0; c < counts.size(); ++c) {
      node.distribution[c] = total > 0.0
                                 ? counts[c] / total
                                 : 1.0 / static_cast<double>(counts.size());
    }
  }

  std::vector<std::size_t> feature_subset() {
    const std::size_t d = data_.num_features();
    std::size_t m = config_.max_features == 0
                        ? d
                        : std::min(config_.max_features, d);
    return rng_.sample_without_replacement(d, m);
  }

  SplitCandidate best_split(const std::vector<std::size_t>& indices,
                            const std::vector<double>& parent_counts,
                            double total) {
    SplitCandidate best;
    const double parent_gini = gini_impurity(parent_counts, total);
    for (std::size_t f : feature_subset()) {
      const auto& spec = data_.schema().feature(f);
      if (spec.is_categorical()) {
        eval_categorical(f, spec.cardinality(), indices, parent_counts,
                         parent_gini, total, best);
      } else {
        eval_numeric(f, indices, parent_counts, parent_gini, total, best);
      }
    }
    return best;
  }

  void eval_categorical(std::size_t f, std::size_t cardinality,
                        const std::vector<std::size_t>& indices,
                        const std::vector<double>& parent_counts,
                        double parent_gini, double total,
                        SplitCandidate& best) {
    // One-vs-rest on each category value present at the node. All counts are
    // small exact integers, so recovering "rest" by subtracting from the
    // node counts yields the same doubles as re-summing the other codes.
    const std::size_t classes = data_.num_classes();
    per_code_.assign(cardinality * classes, 0.0);
    code_totals_.assign(cardinality, 0.0);
    for (std::size_t idx : indices) {
      const auto code = static_cast<std::size_t>(data_.row(idx)[f]);
      per_code_[code * classes + static_cast<std::size_t>(data_.label(idx))] +=
          1.0;
      code_totals_[code] += 1.0;
    }
    rest_.resize(classes);
    for (std::size_t code = 0; code < cardinality; ++code) {
      if (code_totals_[code] == 0.0 || code_totals_[code] == total) continue;
      const std::span<const double> code_counts(
          per_code_.data() + code * classes, classes);
      for (std::size_t c = 0; c < classes; ++c) {
        rest_[c] = parent_counts[c] - code_counts[c];
      }
      const double rest_total = total - code_totals_[code];
      const double gain =
          parent_gini -
          (code_totals_[code] / total) * gini_impurity(code_counts,
                                                       code_totals_[code]) -
          (rest_total / total) * gini_impurity(rest_, rest_total);
      if (gain > best.gini_gain + 1e-12) {
        best = {f, static_cast<double>(code), true, gain, true};
      }
    }
  }

  void eval_numeric(std::size_t f, const std::vector<std::size_t>& indices,
                    const std::vector<double>& parent_counts,
                    double parent_gini, double total, SplitCandidate& best) {
    // One sort + one prefix sweep instead of an O(n) pass per candidate cut.
    // Left counts per cut are exact integers (the same multiset of labels a
    // per-cut rescan would count), so gains are bit-identical to the old
    // rescan form; cuts are evaluated in the same ascending order.
    auto& vl = sorted_;
    vl.clear();
    vl.reserve(indices.size());
    for (std::size_t idx : indices) {
      vl.emplace_back(data_.row(idx)[f], data_.label(idx));
    }
    std::sort(vl.begin(), vl.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    if (vl.front().first == vl.back().first) return;
    // Quantile thresholds (midpoints between adjacent distinct quantiles),
    // deduplicated ascending — the same candidate set the std::set built.
    cuts_.clear();
    const std::size_t k = std::min(config_.numeric_cuts, vl.size() - 1);
    for (std::size_t t = 1; t <= k; ++t) {
      const std::size_t pos = t * (vl.size() - 1) / (k + 1);
      cuts_.push_back(vl[pos].first != vl[pos + 1].first
                          ? 0.5 * (vl[pos].first + vl[pos + 1].first)
                          : vl[pos].first);
    }
    std::sort(cuts_.begin(), cuts_.end());
    cuts_.erase(std::unique(cuts_.begin(), cuts_.end()), cuts_.end());

    const std::size_t classes = data_.num_classes();
    left_.assign(classes, 0.0);
    rest_.resize(classes);
    double left_total = 0.0;
    std::size_t p = 0;
    for (double cut : cuts_) {
      while (p < vl.size() && vl[p].first <= cut) {
        left_[static_cast<std::size_t>(vl[p].second)] += 1.0;
        left_total += 1.0;
        ++p;
      }
      if (left_total == 0.0 || left_total == total) continue;
      const double right_total = total - left_total;
      for (std::size_t c = 0; c < classes; ++c) {
        rest_[c] = parent_counts[c] - left_[c];
      }
      const double gain =
          parent_gini -
          (left_total / total) * gini_impurity(left_, left_total) -
          (right_total / total) * gini_impurity(rest_, right_total);
      if (gain > best.gini_gain + 1e-12) {
        best = {f, cut, false, gain, true};
      }
    }
  }

  const Dataset& data_;
  const DecisionTreeConfig& config_;
  Rng& rng_;
  std::vector<DecisionTreeModel::Node> nodes_;
  // Split-search scratch, hoisted so deep forests do not allocate per node.
  std::vector<std::pair<double, int>> sorted_;
  std::vector<double> cuts_;
  std::vector<double> left_;
  std::vector<double> rest_;
  std::vector<double> per_code_;
  std::vector<double> code_totals_;
};

}  // namespace

std::unique_ptr<Model> DecisionTreeLearner::train(const Dataset& data) const {
  FROTE_CHECK_MSG(!data.empty(), "cannot train on empty dataset");
  std::vector<std::size_t> indices(data.size());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  Rng rng(config_.seed);
  return train_weighted(data, indices, rng);
}

std::unique_ptr<DecisionTreeModel> DecisionTreeLearner::train_weighted(
    const Dataset& data, const std::vector<std::size_t>& indices,
    Rng& rng) const {
  FROTE_CHECK(!indices.empty());
  TreeBuilder builder(data, config_, rng);
  return std::make_unique<DecisionTreeModel>(builder.build(indices),
                                             data.num_classes());
}

}  // namespace frote
