#include "frote/ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <span>
#include <utility>

#include "frote/ml/split_radix.hpp"

namespace frote {

const std::vector<double>& DecisionTreeModel::leaf_distribution(
    std::span<const double> row) const {
  FROTE_CHECK(!nodes_.empty());
  int cur = 0;
  while (nodes_[static_cast<std::size_t>(cur)].left >= 0) {
    const Node& n = nodes_[static_cast<std::size_t>(cur)];
    const double x = row[n.feature];
    const bool go_left = n.categorical ? (x == n.threshold)
                                       : (x <= n.threshold);
    cur = go_left ? n.left : n.right;
  }
  return nodes_[static_cast<std::size_t>(cur)].distribution;
}

std::vector<double> DecisionTreeModel::predict_proba(
    std::span<const double> row) const {
  return leaf_distribution(row);
}

void DecisionTreeModel::predict_proba_into(std::span<const double> row,
                                           std::vector<double>& out) const {
  const auto& dist = leaf_distribution(row);
  out.assign(dist.begin(), dist.end());
}

std::size_t DecisionTreeModel::depth() const {
  // Iterative depth computation over the implicit tree.
  std::size_t max_depth = 0;
  std::vector<std::pair<int, std::size_t>> stack{{0, 0}};
  while (!stack.empty()) {
    auto [id, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const Node& n = nodes_[static_cast<std::size_t>(id)];
    if (n.left >= 0) {
      stack.push_back({n.left, d + 1});
      stack.push_back({n.right, d + 1});
    }
  }
  return max_depth;
}

namespace {

struct SplitCandidate {
  std::size_t feature = 0;
  double threshold = 0.0;
  bool categorical = false;
  double gini_gain = 0.0;
  bool valid = false;
};

double gini_impurity(std::span<const double> counts, double total) {
  if (total <= 0.0) return 0.0;
  double acc = 1.0;
  for (double c : counts) {
    const double p = c / total;
    acc -= p * p;
  }
  return acc;
}

class TreeBuilder {
 public:
  TreeBuilder(const Dataset& data, const DecisionTreeConfig& config, Rng& rng)
      : data_(data),
        config_(config),
        rng_(rng),
        raw_(data.values_contiguous() ? data.raw_values().data() : nullptr),
        labels_(data.raw_labels().data()),
        width_(data.num_features()) {
    if (raw_ == nullptr) {
      // Chunked storage: no whole-table pointer exists, so snapshot one
      // pointer per row instead. The split loops then cost one extra load
      // per row access, only on the geometry that asked for it.
      row_ptrs_.resize(data.size());
      for (std::size_t i = 0; i < row_ptrs_.size(); ++i) {
        row_ptrs_[i] = data.row_ptr(i);
      }
    }
  }

  std::vector<DecisionTreeModel::Node> build(std::vector<std::size_t> indices) {
    nodes_.clear();
    order_ = std::move(indices);
    build_node(0, order_.size(), 0);
    return std::move(nodes_);
  }

 private:
  int build_node(std::size_t begin, std::size_t end, std::size_t depth) {
    const int node_id = static_cast<int>(nodes_.size());
    nodes_.push_back({});

    // Per-depth scratch: a node is done with its counts before recursing,
    // and siblings at the same depth never overlap in time.
    if (depth >= counts_stack_.size()) counts_stack_.resize(depth + 1);
    std::vector<double>& counts = counts_stack_[depth];
    counts.assign(data_.num_classes(), 0.0);
    for (std::size_t i = begin; i < end; ++i) {
      counts[static_cast<std::size_t>(labels_[order_[i]])] += 1.0;
    }
    const auto total = static_cast<double>(end - begin);

    const bool pure = std::any_of(counts.begin(), counts.end(), [&](double c) {
      return c == total;
    });
    SplitCandidate split;
    if (!pure && depth < config_.max_depth &&
        end - begin >= config_.min_samples_split) {
      split = best_split(begin, end, counts, total);
    }

    if (!split.valid) {
      make_leaf(node_id, counts, total);
      return node_id;
    }

    // Stable in-place partition of the shared order buffer: lefts compact
    // forward, rights pass through the scratch — the children see exactly
    // the subsequences the old per-node left/right vectors held.
    right_scratch_.clear();
    std::size_t write = begin;
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t idx = order_[i];
      const double x = value_at(idx, split.feature);
      const bool go_left = split.categorical ? (x == split.threshold)
                                             : (x <= split.threshold);
      if (go_left) {
        order_[write++] = idx;
      } else {
        right_scratch_.push_back(idx);
      }
    }
    std::copy(right_scratch_.begin(), right_scratch_.end(),
              order_.begin() + static_cast<std::ptrdiff_t>(write));
    const std::size_t mid = write;
    if (mid - begin < config_.min_samples_leaf ||
        end - mid < config_.min_samples_leaf) {
      make_leaf(node_id, counts, total);
      return node_id;
    }

    nodes_[static_cast<std::size_t>(node_id)].feature = split.feature;
    nodes_[static_cast<std::size_t>(node_id)].threshold = split.threshold;
    nodes_[static_cast<std::size_t>(node_id)].categorical = split.categorical;
    const int left = build_node(begin, mid, depth + 1);
    const int right = build_node(mid, end, depth + 1);
    nodes_[static_cast<std::size_t>(node_id)].left = left;
    nodes_[static_cast<std::size_t>(node_id)].right = right;
    return node_id;
  }

  void make_leaf(int node_id, const std::vector<double>& counts,
                 double total) {
    auto& node = nodes_[static_cast<std::size_t>(node_id)];
    node.left = node.right = -1;
    node.distribution.resize(counts.size());
    for (std::size_t c = 0; c < counts.size(); ++c) {
      node.distribution[c] = total > 0.0
                                 ? counts[c] / total
                                 : 1.0 / static_cast<double>(counts.size());
    }
  }

  std::vector<std::size_t> feature_subset() {
    const std::size_t d = data_.num_features();
    std::size_t m = config_.max_features == 0
                        ? d
                        : std::min(config_.max_features, d);
    return rng_.sample_without_replacement(d, m);
  }

  SplitCandidate best_split(std::size_t begin, std::size_t end,
                            const std::vector<double>& parent_counts,
                            double total) {
    SplitCandidate best;
    const double parent_gini = gini_impurity(parent_counts, total);
    for (std::size_t f : feature_subset()) {
      const auto& spec = data_.schema().feature(f);
      if (spec.is_categorical()) {
        eval_categorical(f, spec.cardinality(), begin, end, parent_counts,
                         parent_gini, total, best);
      } else {
        eval_numeric(f, begin, end, parent_counts, parent_gini, total, best);
      }
    }
    return best;
  }

  void eval_categorical(std::size_t f, std::size_t cardinality,
                        std::size_t begin, std::size_t end,
                        const std::vector<double>& parent_counts,
                        double parent_gini, double total,
                        SplitCandidate& best) {
    // One-vs-rest on each category value present at the node. All counts are
    // small exact integers, so recovering "rest" by subtracting from the
    // node counts yields the same doubles as re-summing the other codes.
    const std::size_t classes = data_.num_classes();
    per_code_.assign(cardinality * classes, 0.0);
    code_totals_.assign(cardinality, 0.0);
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t idx = order_[i];
      const auto code = static_cast<std::size_t>(value_at(idx, f));
      per_code_[code * classes + static_cast<std::size_t>(labels_[idx])] +=
          1.0;
      code_totals_[code] += 1.0;
    }
    rest_.resize(classes);
    for (std::size_t code = 0; code < cardinality; ++code) {
      if (code_totals_[code] == 0.0 || code_totals_[code] == total) continue;
      const std::span<const double> code_counts(
          per_code_.data() + code * classes, classes);
      for (std::size_t c = 0; c < classes; ++c) {
        rest_[c] = parent_counts[c] - code_counts[c];
      }
      const double rest_total = total - code_totals_[code];
      const double gain =
          parent_gini -
          (code_totals_[code] / total) * gini_impurity(code_counts,
                                                       code_totals_[code]) -
          (rest_total / total) * gini_impurity(rest_, rest_total);
      if (gain > best.gini_gain + 1e-12) {
        best = {f, static_cast<double>(code), true, gain, true};
      }
    }
  }

  /// Sort the node's (value, label) pairs for feature f by value into
  /// (vals_, sorted_labels_): the shared stable LSD byte-radix kernel
  /// (ml/split_radix.hpp) over monotone-mapped keys. Branchless scatter
  /// passes replace the comparison sort that dominated training. The sorted
  /// value sequence equals std::sort's; label order among exactly-equal
  /// values may differ, which no downstream count can observe.
  void radix_sort_feature(std::size_t f, std::size_t begin, std::size_t end) {
    const std::size_t m = end - begin;
    keys_[0].resize(m);
    keys_[1].resize(m);
    labs_[0].resize(m);
    labs_[1].resize(m);
    hist_.assign(8 * 256, 0);
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t idx = order_[begin + i];
      const std::uint64_t key = detail::split_value_key(value_at(idx, f));
      keys_[0][i] = key;
      labs_[0][i] = labels_[idx];
      for (std::size_t b = 0; b < 8; ++b) {
        ++hist_[b * 256 + ((key >> (8 * b)) & 0xFF)];
      }
    }
    const int cur = detail::radix_sort_pairs(keys_, labs_, hist_);
    vals_.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
      vals_[i] = detail::split_key_value(keys_[cur][i]);
    }
    sorted_labels_.assign(labs_[cur].begin(), labs_[cur].end());
  }

  void eval_numeric(std::size_t f, std::size_t begin, std::size_t end,
                    const std::vector<double>& parent_counts,
                    double parent_gini, double total, SplitCandidate& best) {
    // One radix sort + one prefix sweep instead of an O(n) pass per
    // candidate cut. Left counts per cut are exact integers (the same
    // multiset of labels a per-cut rescan would count), so gains are
    // bit-identical to the rescan form; cuts are evaluated in the same
    // ascending order.
    radix_sort_feature(f, begin, end);
    const auto& vals = vals_;
    if (vals.front() == vals.back()) return;
    // Quantile thresholds (midpoints between adjacent distinct quantiles),
    // deduplicated ascending — the same candidate set the std::set built.
    cuts_.clear();
    const std::size_t k = std::min(config_.numeric_cuts, vals.size() - 1);
    for (std::size_t t = 1; t <= k; ++t) {
      const std::size_t pos = t * (vals.size() - 1) / (k + 1);
      cuts_.push_back(vals[pos] != vals[pos + 1]
                          ? 0.5 * (vals[pos] + vals[pos + 1])
                          : vals[pos]);
    }
    std::sort(cuts_.begin(), cuts_.end());
    cuts_.erase(std::unique(cuts_.begin(), cuts_.end()), cuts_.end());

    const std::size_t classes = data_.num_classes();
    left_.assign(classes, 0.0);
    rest_.resize(classes);
    double left_total = 0.0;
    std::size_t p = 0;
    for (double cut : cuts_) {
      while (p < vals.size() && vals[p] <= cut) {
        left_[static_cast<std::size_t>(sorted_labels_[p])] += 1.0;
        left_total += 1.0;
        ++p;
      }
      if (left_total == 0.0 || left_total == total) continue;
      const double right_total = total - left_total;
      for (std::size_t c = 0; c < classes; ++c) {
        rest_[c] = parent_counts[c] - left_[c];
      }
      const double gain =
          parent_gini -
          (left_total / total) * gini_impurity(left_, left_total) -
          (right_total / total) * gini_impurity(rest_, right_total);
      if (gain > best.gini_gain + 1e-12) {
        best = {f, cut, false, gain, true};
      }
    }
  }

  /// Feature value of dataset row `idx`, column `f` — flat-table pointer
  /// arithmetic when storage is contiguous, per-row pointers when chunked.
  double value_at(std::size_t idx, std::size_t f) const {
    return raw_ != nullptr ? raw_[idx * width_ + f] : row_ptrs_[idx][f];
  }

  const Dataset& data_;
  const DecisionTreeConfig& config_;
  Rng& rng_;
  const double* raw_;    // whole-table pointer; nullptr on chunked storage
  std::vector<const double*> row_ptrs_;  // chunked fallback, one per row
  const int* labels_;
  std::size_t width_;
  std::vector<DecisionTreeModel::Node> nodes_;
  std::vector<std::size_t> order_;  // shared node-range index buffer
  // Split-search scratch, hoisted so deep forests do not allocate per node.
  std::vector<std::vector<double>> counts_stack_;  // per-depth class counts
  std::vector<std::size_t> right_scratch_;
  std::vector<std::uint64_t> keys_[2];  // radix double-buffers
  std::vector<int> labs_[2];
  std::vector<std::uint32_t> hist_;
  std::vector<double> vals_;
  std::vector<int> sorted_labels_;
  std::vector<double> cuts_;
  std::vector<double> left_;
  std::vector<double> rest_;
  std::vector<double> per_code_;
  std::vector<double> code_totals_;
};

}  // namespace

std::unique_ptr<Model> DecisionTreeLearner::train(const Dataset& data) const {
  FROTE_CHECK_MSG(!data.empty(), "cannot train on empty dataset");
  std::vector<std::size_t> indices(data.size());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  Rng rng(config_.seed);
  return train_weighted(data, indices, rng);
}

std::unique_ptr<DecisionTreeModel> DecisionTreeLearner::train_weighted(
    const Dataset& data, const std::vector<std::size_t>& indices,
    Rng& rng) const {
  FROTE_CHECK(!indices.empty());
  TreeBuilder builder(data, config_, rng);
  return std::make_unique<DecisionTreeModel>(builder.build(indices),
                                             data.num_classes());
}

}  // namespace frote
