#include "frote/ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace frote {

std::vector<double> DecisionTreeModel::predict_proba(
    std::span<const double> row) const {
  FROTE_CHECK(!nodes_.empty());
  int cur = 0;
  while (nodes_[static_cast<std::size_t>(cur)].left >= 0) {
    const Node& n = nodes_[static_cast<std::size_t>(cur)];
    const double x = row[n.feature];
    const bool go_left = n.categorical ? (x == n.threshold)
                                       : (x <= n.threshold);
    cur = go_left ? n.left : n.right;
  }
  return nodes_[static_cast<std::size_t>(cur)].distribution;
}

std::size_t DecisionTreeModel::depth() const {
  // Iterative depth computation over the implicit tree.
  std::size_t max_depth = 0;
  std::vector<std::pair<int, std::size_t>> stack{{0, 0}};
  while (!stack.empty()) {
    auto [id, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const Node& n = nodes_[static_cast<std::size_t>(id)];
    if (n.left >= 0) {
      stack.push_back({n.left, d + 1});
      stack.push_back({n.right, d + 1});
    }
  }
  return max_depth;
}

namespace {

struct SplitCandidate {
  std::size_t feature = 0;
  double threshold = 0.0;
  bool categorical = false;
  double gini_gain = 0.0;
  bool valid = false;
};

double gini_impurity(const std::vector<double>& counts, double total) {
  if (total <= 0.0) return 0.0;
  double acc = 1.0;
  for (double c : counts) {
    const double p = c / total;
    acc -= p * p;
  }
  return acc;
}

class TreeBuilder {
 public:
  TreeBuilder(const Dataset& data, const DecisionTreeConfig& config, Rng& rng)
      : data_(data), config_(config), rng_(rng) {}

  std::vector<DecisionTreeModel::Node> build(
      const std::vector<std::size_t>& indices) {
    nodes_.clear();
    build_node(indices, 0);
    return std::move(nodes_);
  }

 private:
  int build_node(const std::vector<std::size_t>& indices, std::size_t depth) {
    const int node_id = static_cast<int>(nodes_.size());
    nodes_.push_back({});

    std::vector<double> counts(data_.num_classes(), 0.0);
    for (std::size_t idx : indices) {
      counts[static_cast<std::size_t>(data_.label(idx))] += 1.0;
    }
    const auto total = static_cast<double>(indices.size());

    const bool pure = std::any_of(counts.begin(), counts.end(), [&](double c) {
      return c == total;
    });
    SplitCandidate split;
    if (!pure && depth < config_.max_depth &&
        indices.size() >= config_.min_samples_split) {
      split = best_split(indices, counts, total);
    }

    if (!split.valid) {
      make_leaf(node_id, counts, total);
      return node_id;
    }

    std::vector<std::size_t> left_idx, right_idx;
    for (std::size_t idx : indices) {
      const double x = data_.row(idx)[split.feature];
      const bool go_left = split.categorical ? (x == split.threshold)
                                             : (x <= split.threshold);
      (go_left ? left_idx : right_idx).push_back(idx);
    }
    if (left_idx.size() < config_.min_samples_leaf ||
        right_idx.size() < config_.min_samples_leaf) {
      make_leaf(node_id, counts, total);
      return node_id;
    }

    nodes_[static_cast<std::size_t>(node_id)].feature = split.feature;
    nodes_[static_cast<std::size_t>(node_id)].threshold = split.threshold;
    nodes_[static_cast<std::size_t>(node_id)].categorical = split.categorical;
    const int left = build_node(left_idx, depth + 1);
    const int right = build_node(right_idx, depth + 1);
    nodes_[static_cast<std::size_t>(node_id)].left = left;
    nodes_[static_cast<std::size_t>(node_id)].right = right;
    return node_id;
  }

  void make_leaf(int node_id, const std::vector<double>& counts,
                 double total) {
    auto& node = nodes_[static_cast<std::size_t>(node_id)];
    node.left = node.right = -1;
    node.distribution.resize(counts.size());
    for (std::size_t c = 0; c < counts.size(); ++c) {
      node.distribution[c] = total > 0.0
                                 ? counts[c] / total
                                 : 1.0 / static_cast<double>(counts.size());
    }
  }

  std::vector<std::size_t> feature_subset() {
    const std::size_t d = data_.num_features();
    std::size_t m = config_.max_features == 0
                        ? d
                        : std::min(config_.max_features, d);
    return rng_.sample_without_replacement(d, m);
  }

  SplitCandidate best_split(const std::vector<std::size_t>& indices,
                            const std::vector<double>& parent_counts,
                            double total) {
    SplitCandidate best;
    const double parent_gini = gini_impurity(parent_counts, total);
    for (std::size_t f : feature_subset()) {
      const auto& spec = data_.schema().feature(f);
      if (spec.is_categorical()) {
        eval_categorical(f, spec.cardinality(), indices, parent_gini, total,
                         best);
      } else {
        eval_numeric(f, indices, parent_gini, total, best);
      }
    }
    return best;
  }

  void eval_categorical(std::size_t f, std::size_t cardinality,
                        const std::vector<std::size_t>& indices,
                        double parent_gini, double total,
                        SplitCandidate& best) {
    // One-vs-rest on each category value present at the node.
    std::vector<std::vector<double>> per_code(
        cardinality, std::vector<double>(data_.num_classes(), 0.0));
    std::vector<double> code_totals(cardinality, 0.0);
    for (std::size_t idx : indices) {
      const auto code = static_cast<std::size_t>(data_.row(idx)[f]);
      per_code[code][static_cast<std::size_t>(data_.label(idx))] += 1.0;
      code_totals[code] += 1.0;
    }
    std::vector<double> rest(data_.num_classes());
    for (std::size_t code = 0; code < cardinality; ++code) {
      if (code_totals[code] == 0.0 || code_totals[code] == total) continue;
      for (std::size_t c = 0; c < rest.size(); ++c) {
        rest[c] = 0.0;
      }
      for (std::size_t other = 0; other < cardinality; ++other) {
        if (other == code) continue;
        for (std::size_t c = 0; c < rest.size(); ++c) {
          rest[c] += per_code[other][c];
        }
      }
      const double rest_total = total - code_totals[code];
      const double gain =
          parent_gini -
          (code_totals[code] / total) * gini_impurity(per_code[code],
                                                      code_totals[code]) -
          (rest_total / total) * gini_impurity(rest, rest_total);
      if (gain > best.gini_gain + 1e-12) {
        best = {f, static_cast<double>(code), true, gain, true};
      }
    }
  }

  void eval_numeric(std::size_t f, const std::vector<std::size_t>& indices,
                    double parent_gini, double total, SplitCandidate& best) {
    std::vector<double> values;
    values.reserve(indices.size());
    for (std::size_t idx : indices) values.push_back(data_.row(idx)[f]);
    std::sort(values.begin(), values.end());
    if (values.front() == values.back()) return;
    // Quantile thresholds (midpoints between adjacent distinct quantiles).
    std::set<double> cuts;
    const std::size_t k = std::min(config_.numeric_cuts, values.size() - 1);
    for (std::size_t t = 1; t <= k; ++t) {
      const std::size_t pos =
          t * (values.size() - 1) / (k + 1);
      if (values[pos] != values[pos + 1]) {
        cuts.insert(0.5 * (values[pos] + values[pos + 1]));
      } else {
        cuts.insert(values[pos]);
      }
    }
    std::vector<double> left(data_.num_classes());
    for (double cut : cuts) {
      std::fill(left.begin(), left.end(), 0.0);
      double left_total = 0.0;
      for (std::size_t idx : indices) {
        if (data_.row(idx)[f] <= cut) {
          left[static_cast<std::size_t>(data_.label(idx))] += 1.0;
          left_total += 1.0;
        }
      }
      if (left_total == 0.0 || left_total == total) continue;
      std::vector<double> right(data_.num_classes());
      double right_total = total - left_total;
      for (std::size_t c = 0; c < right.size(); ++c) {
        // counts at the node = left + right; recover right from parent.
        right[c] = -left[c];
      }
      for (std::size_t idx : indices) {
        right[static_cast<std::size_t>(data_.label(idx))] += 1.0;
      }
      const double gain =
          parent_gini -
          (left_total / total) * gini_impurity(left, left_total) -
          (right_total / total) * gini_impurity(right, right_total);
      if (gain > best.gini_gain + 1e-12) {
        best = {f, cut, false, gain, true};
      }
    }
  }

  const Dataset& data_;
  const DecisionTreeConfig& config_;
  Rng& rng_;
  std::vector<DecisionTreeModel::Node> nodes_;
};

}  // namespace

std::unique_ptr<Model> DecisionTreeLearner::train(const Dataset& data) const {
  FROTE_CHECK_MSG(!data.empty(), "cannot train on empty dataset");
  std::vector<std::size_t> indices(data.size());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  Rng rng(config_.seed);
  return train_weighted(data, indices, rng);
}

std::unique_ptr<DecisionTreeModel> DecisionTreeLearner::train_weighted(
    const Dataset& data, const std::vector<std::size_t>& indices,
    Rng& rng) const {
  FROTE_CHECK(!indices.empty());
  TreeBuilder builder(data, config_, rng);
  return std::make_unique<DecisionTreeModel>(builder.build(indices),
                                             data.num_classes());
}

}  // namespace frote
