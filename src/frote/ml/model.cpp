#include "frote/ml/model.hpp"

#include <algorithm>

#include "frote/util/parallel.hpp"

namespace frote {

namespace {
/// Rows per chunk for the batch prediction sweeps. Fixed so chunk
/// boundaries — and therefore any accumulation order built on top of these
/// predictions — depend only on the row count, never the thread count.
constexpr std::size_t kPredictGrain = 128;
}  // namespace

int Model::predict(std::span<const double> row) const {
  std::vector<double> proba;
  predict_proba_into(row, proba);
  return argmax_class(proba);
}

void Model::predict_proba_into(std::span<const double> row,
                               std::vector<double>& out) const {
  out = predict_proba(row);
}

std::vector<int> Model::predict_all(const Dataset& data, int threads) const {
  std::vector<int> out(data.size());
  parallel_for(data.size(), kPredictGrain, threads,
               [&](std::size_t begin, std::size_t end) {
                 std::vector<double> proba;
                 for (std::size_t i = begin; i < end; ++i) {
                   predict_proba_into(data.row(i), proba);
                   out[i] = argmax_class(proba);
                 }
               });
  return out;
}

std::vector<double> Model::predict_proba_all(const Dataset& data,
                                             int threads) const {
  const std::size_t classes = num_classes();
  std::vector<double> out(data.size() * classes);
  parallel_for(data.size(), kPredictGrain, threads,
               [&](std::size_t begin, std::size_t end) {
                 std::vector<double> proba;
                 for (std::size_t i = begin; i < end; ++i) {
                   predict_proba_into(data.row(i), proba);
                   std::copy(proba.begin(), proba.end(),
                             out.begin() + static_cast<std::ptrdiff_t>(
                                               i * classes));
                 }
               });
  return out;
}

}  // namespace frote
