#include "frote/ml/model.hpp"

#include <algorithm>

namespace frote {

int Model::predict(std::span<const double> row) const {
  const auto proba = predict_proba(row);
  return static_cast<int>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
}

std::vector<int> Model::predict_all(const Dataset& data) const {
  std::vector<int> out;
  out.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    out.push_back(predict(data.row(i)));
  }
  return out;
}

}  // namespace frote
