#include "frote/ml/logistic_regression.hpp"

#include <algorithm>
#include <cmath>

#include "frote/util/parallel.hpp"

namespace frote {

namespace {
/// Rows per objective-sweep chunk. Fixed so the gradient/NLL accumulation
/// order depends only on the dataset size — never the thread count.
constexpr std::size_t kObjectiveGrain = 256;
}  // namespace

void softmax_inplace(std::vector<double>& logits) {
  const double m = *std::max_element(logits.begin(), logits.end());
  double total = 0.0;
  for (double& v : logits) {
    v = std::exp(v - m);
    total += v;
  }
  for (double& v : logits) v /= total;
}

LogisticRegressionModel::LogisticRegressionModel(Encoder encoder,
                                                 std::vector<double> weights,
                                                 std::size_t num_classes,
                                                 std::size_t width)
    : Model(num_classes), encoder_(std::move(encoder)),
      weights_(std::move(weights)), width_(width) {
  FROTE_CHECK(weights_.size() == num_classes * (width_ + 1));
}

std::vector<double> LogisticRegressionModel::predict_proba(
    std::span<const double> row) const {
  std::vector<double> out;
  predict_proba_into(row, out);
  return out;
}

void LogisticRegressionModel::predict_proba_into(
    std::span<const double> row, std::vector<double>& out) const {
  // The encoded-row scratch is thread-local so the batch sweeps can fan
  // rows out without per-row allocations or shared mutable state.
  static thread_local std::vector<double> encoded;
  encoder_.transform_into(row, encoded);
  out.assign(num_classes(), 0.0);
  for (std::size_t c = 0; c < num_classes(); ++c) {
    const double* w = weights_.data() + c * (width_ + 1);
    double acc = w[width_];  // intercept
    for (std::size_t j = 0; j < width_; ++j) acc += w[j] * encoded[j];
    out[c] = acc;
  }
  softmax_inplace(out);
}

double LogisticRegressionModel::weight(std::size_t c, std::size_t j) const {
  FROTE_CHECK(c < num_classes() && j <= width_);
  return weights_[c * (width_ + 1) + j];
}

namespace {

/// Full-batch objective and gradient of the L2-penalised multinomial NLL,
/// over the sparse CSR encoding. Chunked: each chunk produces a partial
/// gradient + NLL, combined in ascending chunk order (deterministic for
/// every thread count by construction).
struct Objective {
  const Encoder::SparseRows& x;
  const std::vector<int>& y;
  std::size_t n, width, classes;
  double inv_c;  // 1/C
  int threads;

  struct Partial {
    std::vector<double> grad;
    double nll = 0.0;
  };

  double value_and_grad(const std::vector<double>& w,
                        std::vector<double>& grad) const {
    if (classes == 2) return binary_value_and_grad(w, grad);
    const std::size_t stride = width + 1;
    const std::size_t dim = classes * stride;

    auto map = [&](std::size_t begin, std::size_t end) {
      Partial p;
      p.grad.assign(dim, 0.0);
      std::vector<double> logits(classes);
      for (std::size_t i = begin; i < end; ++i) {
        const std::size_t row_begin = x.row_begin[i];
        const std::size_t row_end = x.row_begin[i + 1];
        for (std::size_t c = 0; c < classes; ++c) {
          const double* wc = w.data() + c * stride;
          double acc = wc[width];
          for (std::size_t e = row_begin; e < row_end; ++e) {
            acc += wc[x.index[e]] * x.value[e];
          }
          logits[c] = acc;
        }
        softmax_inplace(logits);
        const auto yi = static_cast<std::size_t>(y[i]);
        p.nll -= std::log(std::max(logits[yi], 1e-300));
        for (std::size_t c = 0; c < classes; ++c) {
          const double err = logits[c] - (c == yi ? 1.0 : 0.0);
          double* gc = p.grad.data() + c * stride;
          for (std::size_t e = row_begin; e < row_end; ++e) {
            gc[x.index[e]] += err * x.value[e];
          }
          gc[width] += err;
        }
      }
      return p;
    };
    const Partial total = parallel_reduce(
        n, kObjectiveGrain, threads, Partial{}, map,
        [](Partial& acc, Partial&& part) {
          if (acc.grad.empty()) {
            acc = std::move(part);
            return;
          }
          for (std::size_t j = 0; j < acc.grad.size(); ++j) {
            acc.grad[j] += part.grad[j];
          }
          acc.nll += part.nll;
        });

    std::copy(total.grad.begin(), total.grad.end(), grad.begin());
    return total.nll + apply_penalty(w, grad);
  }

  /// Two-class specialisation: the softmax over [l0, l1] collapses to one
  /// sigmoid of the logit difference, and the class-0 gradient is exactly
  /// the negated class-1 gradient — half the transcendentals, half the
  /// sparse passes. Same chunked, order-fixed reduction as the general path.
  double binary_value_and_grad(const std::vector<double>& w,
                               std::vector<double>& grad) const {
    const std::size_t stride = width + 1;
    std::vector<double> wd(stride);  // class-1 minus class-0 weights
    for (std::size_t j = 0; j < stride; ++j) {
      wd[j] = w[stride + j] - w[j];
    }

    auto map = [&](std::size_t begin, std::size_t end) {
      Partial p;
      p.grad.assign(stride, 0.0);  // d NLL / d w1; d/d w0 is its negation
      for (std::size_t i = begin; i < end; ++i) {
        const std::size_t row_begin = x.row_begin[i];
        const std::size_t row_end = x.row_begin[i + 1];
        double z = wd[width];
        for (std::size_t e = row_begin; e < row_end; ++e) {
          z += wd[x.index[e]] * x.value[e];
        }
        const double p1 = 1.0 / (1.0 + std::exp(-z));
        const bool positive = y[i] == 1;
        p.nll -= std::log(std::max(positive ? p1 : 1.0 - p1, 1e-300));
        const double err = p1 - (positive ? 1.0 : 0.0);
        for (std::size_t e = row_begin; e < row_end; ++e) {
          p.grad[x.index[e]] += err * x.value[e];
        }
        p.grad[width] += err;
      }
      return p;
    };
    const Partial total = parallel_reduce(
        n, kObjectiveGrain, threads, Partial{}, map,
        [](Partial& acc, Partial&& part) {
          if (acc.grad.empty()) {
            acc = std::move(part);
            return;
          }
          for (std::size_t j = 0; j < acc.grad.size(); ++j) {
            acc.grad[j] += part.grad[j];
          }
          acc.nll += part.nll;
        });

    for (std::size_t j = 0; j < stride; ++j) {
      grad[j] = -total.grad[j];
      grad[stride + j] = total.grad[j];
    }
    return total.nll + apply_penalty(w, grad);
  }

  /// L2 penalty on non-intercept weights (sklearn convention); adds the
  /// penalty gradient in place and returns the penalty value.
  double apply_penalty(const std::vector<double>& w,
                       std::vector<double>& grad) const {
    const std::size_t stride = width + 1;
    double penalty = 0.0;
    for (std::size_t c = 0; c < classes; ++c) {
      const double* wc = w.data() + c * stride;
      double* gc = grad.data() + c * stride;
      for (std::size_t j = 0; j < width; ++j) {
        penalty += 0.5 * inv_c * wc[j] * wc[j];
        gc[j] += inv_c * wc[j];
      }
    }
    return penalty;
  }
};

/// The full fit loop, shared by the cold and warm learners: encode, start
/// from `init` (zeros when null), run at most `max_iter` descent steps with
/// backtracking line search. A warm start only changes the starting point
/// and budget — the per-iteration arithmetic is identical.
std::unique_ptr<Model> fit_logistic(const Dataset& data,
                                    const LogisticRegressionConfig& config,
                                    const std::vector<double>* init,
                                    std::size_t max_iter) {
  FROTE_CHECK_MSG(!data.empty(), "cannot train on empty dataset");
  Encoder encoder = Encoder::fit(data);
  const std::size_t width = encoder.encoded_width();
  const std::size_t classes = data.num_classes();
  const std::size_t n = data.size();

  const Encoder::SparseRows x = encoder.sparse_transform_all(data);
  std::vector<int> y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = data.label(i);

  Objective objective{x,       y,        n, width, classes, 1.0 / config.c,
                      config.threads};
  const std::size_t dim = classes * (width + 1);
  std::vector<double> w(dim, 0.0), grad(dim, 0.0), trial(dim, 0.0),
      trial_grad(dim, 0.0);
  if (init != nullptr) {
    FROTE_CHECK(init->size() == dim);
    w = *init;
  }
  double value = objective.value_and_grad(w, grad);

  double step = 1.0 / static_cast<double>(std::max<std::size_t>(n, 1));
  for (std::size_t iter = 0; iter < max_iter; ++iter) {
    double grad_norm2 = 0.0;
    for (double g : grad) grad_norm2 += g * g;
    if (std::sqrt(grad_norm2) < config.tolerance * static_cast<double>(n)) {
      break;
    }
    // Backtracking line search on the descent direction -grad.
    bool accepted = false;
    for (int bt = 0; bt < 30; ++bt) {
      for (std::size_t j = 0; j < dim; ++j) trial[j] = w[j] - step * grad[j];
      const double trial_value = objective.value_and_grad(trial, trial_grad);
      if (trial_value < value - 1e-4 * step * grad_norm2) {
        w.swap(trial);
        grad.swap(trial_grad);
        value = trial_value;
        step *= 1.3;  // optimistic growth for the next iteration
        accepted = true;
        break;
      }
      step *= 0.5;
    }
    if (!accepted) break;  // line search stalled: (near-)stationary point
  }

  return std::make_unique<LogisticRegressionModel>(std::move(encoder),
                                                   std::move(w), classes,
                                                   width);
}

}  // namespace

std::unique_ptr<Model> LogisticRegressionLearner::train(
    const Dataset& data) const {
  return fit_logistic(data, config_, nullptr, config_.max_iter);
}

std::unique_ptr<Model> LogisticRegressionWarmLearner::train(
    const Dataset& data) const {
  return fit_logistic(data, config_, nullptr, config_.max_iter);
}

std::unique_ptr<Model> LogisticRegressionWarmLearner::update(
    const Model& previous, const Dataset& data,
    std::size_t trained_rows) const {
  (void)trained_rows;
  const auto* prev = dynamic_cast<const LogisticRegressionModel*>(&previous);
  if (prev == nullptr || prev->num_classes() != data.num_classes()) {
    return fit_logistic(data, config_, nullptr, config_.max_iter);
  }
  // One-hot width is a pure function of the schema, so the previous weight
  // matrix keeps its shape as rows append; a changed width (different
  // schema entirely) falls back to a cold fit.
  Encoder probe = Encoder::fit(data);
  if (prev->encoded_width() != probe.encoded_width()) {
    return fit_logistic(data, config_, nullptr, config_.max_iter);
  }
  return fit_logistic(data, config_, &prev->weights(), config_.warm_max_iter);
}

}  // namespace frote
