#include "frote/ml/logistic_regression.hpp"

#include <algorithm>
#include <cmath>

namespace frote {

void softmax_inplace(std::vector<double>& logits) {
  const double m = *std::max_element(logits.begin(), logits.end());
  double total = 0.0;
  for (double& v : logits) {
    v = std::exp(v - m);
    total += v;
  }
  for (double& v : logits) v /= total;
}

LogisticRegressionModel::LogisticRegressionModel(Encoder encoder,
                                                 std::vector<double> weights,
                                                 std::size_t num_classes,
                                                 std::size_t width)
    : Model(num_classes), encoder_(std::move(encoder)),
      weights_(std::move(weights)), width_(width) {
  FROTE_CHECK(weights_.size() == num_classes * (width_ + 1));
}

std::vector<double> LogisticRegressionModel::predict_proba(
    std::span<const double> row) const {
  const auto x = encoder_.transform(row);
  std::vector<double> logits(num_classes(), 0.0);
  for (std::size_t c = 0; c < num_classes(); ++c) {
    const double* w = weights_.data() + c * (width_ + 1);
    double acc = w[width_];  // intercept
    for (std::size_t j = 0; j < width_; ++j) acc += w[j] * x[j];
    logits[c] = acc;
  }
  softmax_inplace(logits);
  return logits;
}

double LogisticRegressionModel::weight(std::size_t c, std::size_t j) const {
  FROTE_CHECK(c < num_classes() && j <= width_);
  return weights_[c * (width_ + 1) + j];
}

namespace {

/// Full-batch objective and gradient of the L2-penalised multinomial NLL.
struct Objective {
  const std::vector<double>& x;  // n x width, row-major (encoded)
  const std::vector<int>& y;
  std::size_t n, width, classes;
  double inv_c;  // 1/C

  double value_and_grad(const std::vector<double>& w,
                        std::vector<double>& grad) const {
    const std::size_t stride = width + 1;
    std::fill(grad.begin(), grad.end(), 0.0);
    double nll = 0.0;
    std::vector<double> logits(classes);
    for (std::size_t i = 0; i < n; ++i) {
      const double* xi = x.data() + i * width;
      for (std::size_t c = 0; c < classes; ++c) {
        const double* wc = w.data() + c * stride;
        double acc = wc[width];
        for (std::size_t j = 0; j < width; ++j) acc += wc[j] * xi[j];
        logits[c] = acc;
      }
      softmax_inplace(logits);
      const auto yi = static_cast<std::size_t>(y[i]);
      nll -= std::log(std::max(logits[yi], 1e-300));
      for (std::size_t c = 0; c < classes; ++c) {
        const double err = logits[c] - (c == yi ? 1.0 : 0.0);
        double* gc = grad.data() + c * stride;
        for (std::size_t j = 0; j < width; ++j) gc[j] += err * xi[j];
        gc[width] += err;
      }
    }
    // L2 penalty on non-intercept weights (sklearn convention).
    double penalty = 0.0;
    for (std::size_t c = 0; c < classes; ++c) {
      const double* wc = w.data() + c * stride;
      double* gc = grad.data() + c * stride;
      for (std::size_t j = 0; j < width; ++j) {
        penalty += 0.5 * inv_c * wc[j] * wc[j];
        gc[j] += inv_c * wc[j];
      }
    }
    return nll + penalty;
  }
};

}  // namespace

std::unique_ptr<Model> LogisticRegressionLearner::train(
    const Dataset& data) const {
  FROTE_CHECK_MSG(!data.empty(), "cannot train on empty dataset");
  Encoder encoder = Encoder::fit(data);
  const std::size_t width = encoder.encoded_width();
  const std::size_t classes = data.num_classes();
  const std::size_t n = data.size();

  const std::vector<double> x = encoder.transform_all(data);
  std::vector<int> y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = data.label(i);

  Objective objective{x, y, n, width, classes, 1.0 / config_.c};
  const std::size_t dim = classes * (width + 1);
  std::vector<double> w(dim, 0.0), grad(dim, 0.0), trial(dim, 0.0),
      trial_grad(dim, 0.0);
  double value = objective.value_and_grad(w, grad);

  double step = 1.0 / static_cast<double>(std::max<std::size_t>(n, 1));
  for (std::size_t iter = 0; iter < config_.max_iter; ++iter) {
    double grad_norm2 = 0.0;
    for (double g : grad) grad_norm2 += g * g;
    if (std::sqrt(grad_norm2) < config_.tolerance * static_cast<double>(n)) {
      break;
    }
    // Backtracking line search on the descent direction -grad.
    bool accepted = false;
    for (int bt = 0; bt < 30; ++bt) {
      for (std::size_t j = 0; j < dim; ++j) trial[j] = w[j] - step * grad[j];
      const double trial_value = objective.value_and_grad(trial, trial_grad);
      if (trial_value < value - 1e-4 * step * grad_norm2) {
        w.swap(trial);
        grad.swap(trial_grad);
        value = trial_value;
        step *= 1.3;  // optimistic growth for the next iteration
        accepted = true;
        break;
      }
      step *= 0.5;
    }
    if (!accepted) break;  // line search stalled: (near-)stationary point
  }

  return std::make_unique<LogisticRegressionModel>(std::move(encoder),
                                                   std::move(w), classes,
                                                   width);
}

}  // namespace frote
