// Gaussian/categorical naive Bayes.
//
// Not used in the paper's experiments, but FROTE is advertised as working
// with ANY training algorithm that maps a dataset to a classifier (§1); a
// cheap generative learner with totally different inductive bias is the
// natural stress test of that claim (and a fast default for large sweeps).
// Numeric features get per-class Gaussians; categorical features get
// Laplace-smoothed frequency tables.
#pragma once

#include "frote/ml/model.hpp"

namespace frote {

struct NaiveBayesConfig {
  double laplace_alpha = 1.0;   // categorical smoothing
  double min_variance = 1e-6;   // Gaussian variance floor
};

class NaiveBayesModel : public Model {
 public:
  NaiveBayesModel(std::size_t num_classes, std::size_t num_features);

  std::vector<double> predict_proba(std::span<const double> row) const override;

 private:
  friend class NaiveBayesLearner;
  struct ClassStats {
    double log_prior = 0.0;
    std::vector<double> mean;      // per numeric feature
    std::vector<double> variance;  // per numeric feature
    std::vector<std::vector<double>> log_cat;  // per feature, per code
  };
  std::vector<ClassStats> classes_;
  std::vector<bool> categorical_;
};

class NaiveBayesLearner : public Learner {
 public:
  explicit NaiveBayesLearner(NaiveBayesConfig config = {}) : config_(config) {}

  std::unique_ptr<Model> train(const Dataset& data) const override;
  std::string name() const override { return "NB"; }

 private:
  NaiveBayesConfig config_;
};

}  // namespace frote
