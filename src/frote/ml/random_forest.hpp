// Random forest: bagged CART trees with sqrt-feature subsampling.
// The paper uses scikit-learn's RandomForestClassifier with default
// parameters except max_depth = 3 (§5.1).
//
// Every tree draws from its own derive_seed(seed, t) RNG stream, so trees
// are independent of each other and of the thread count: with threads > 1
// they train concurrently and are emitted in tree order, bit-identical to
// the serial schedule.
#pragma once

#include "frote/ml/decision_tree.hpp"

namespace frote {

struct RandomForestConfig {
  std::size_t num_trees = 50;
  std::size_t max_depth = 3;  // the paper's setting
  std::size_t min_samples_leaf = 1;
  /// 0 ⇒ sqrt(num_features), sklearn's default for classification.
  std::size_t max_features = 0;
  std::size_t numeric_cuts = 24;
  std::uint64_t seed = 42;
  /// Threads for per-tree training; 0 ⇒ FROTE_NUM_THREADS.
  int threads = 0;
};

/// Everything needed to decide, bitwise, whether retraining one tree on a
/// grown dataset would reproduce it: the bootstrap draw and the RNG state
/// handed to the tree learner afterwards. A tree whose redrawn sample and
/// post-sample state both match is the same pure function of the same
/// inputs (the sampled rows are all in the unchanged prefix), so update()
/// may clone it instead of retraining (docs/DESIGN.md §10).
struct TreeBootstrap {
  std::vector<std::size_t> sample;  // drawn row indices, in draw order
  RngState after_sample;            // RNG state passed to train_weighted
};

class RandomForestModel : public Model {
 public:
  RandomForestModel(std::vector<std::unique_ptr<DecisionTreeModel>> trees,
                    std::size_t num_classes)
      : Model(num_classes), trees_(std::move(trees)) {}

  /// Soft vote: mean of the trees' leaf distributions.
  std::vector<double> predict_proba(std::span<const double> row) const override;
  void predict_proba_into(std::span<const double> row,
                          std::vector<double>& out) const override;

  std::size_t num_trees() const { return trees_.size(); }
  const DecisionTreeModel& tree(std::size_t t) const { return *trees_[t]; }

  /// Bootstrap replay records, one per tree (empty when the model predates
  /// update support, e.g. was built by hand in a test).
  void set_bootstraps(std::vector<TreeBootstrap> bootstraps,
                      std::uint64_t seed) {
    bootstraps_ = std::move(bootstraps);
    bootstrap_seed_ = seed;
  }
  bool has_bootstraps() const { return bootstraps_.size() == trees_.size(); }
  const std::vector<TreeBootstrap>& bootstraps() const { return bootstraps_; }
  std::uint64_t bootstrap_seed() const { return bootstrap_seed_; }

 private:
  std::vector<std::unique_ptr<DecisionTreeModel>> trees_;
  std::vector<TreeBootstrap> bootstraps_;
  std::uint64_t bootstrap_seed_ = 0;
};

class RandomForestLearner : public Learner {
 public:
  explicit RandomForestLearner(RandomForestConfig config = {})
      : config_(config) {}

  std::unique_ptr<Model> train(const Dataset& data) const override;

  /// Exact incremental retrain: redraw every tree's bootstrap under the new
  /// row count and retrain only trees whose (sample, post-sample RNG state)
  /// differ from the recorded draw; unchanged trees are cloned. Emitted in
  /// tree order, bit-identical to train(data) at every thread count.
  std::unique_ptr<Model> update(const Model& previous, const Dataset& data,
                                std::size_t trained_rows) const override;

  std::string name() const override { return "RF"; }

 private:
  RandomForestConfig config_;
  DecisionTreeLearner tree_learner(const Dataset& data) const;
};

}  // namespace frote
