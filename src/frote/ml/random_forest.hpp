// Random forest: bagged CART trees with sqrt-feature subsampling.
// The paper uses scikit-learn's RandomForestClassifier with default
// parameters except max_depth = 3 (§5.1).
//
// Every tree draws from its own derive_seed(seed, t) RNG stream, so trees
// are independent of each other and of the thread count: with threads > 1
// they train concurrently and are emitted in tree order, bit-identical to
// the serial schedule.
#pragma once

#include "frote/ml/decision_tree.hpp"

namespace frote {

struct RandomForestConfig {
  std::size_t num_trees = 50;
  std::size_t max_depth = 3;  // the paper's setting
  std::size_t min_samples_leaf = 1;
  /// 0 ⇒ sqrt(num_features), sklearn's default for classification.
  std::size_t max_features = 0;
  std::size_t numeric_cuts = 24;
  std::uint64_t seed = 42;
  /// Threads for per-tree training; 0 ⇒ FROTE_NUM_THREADS.
  int threads = 0;
};

class RandomForestModel : public Model {
 public:
  RandomForestModel(std::vector<std::unique_ptr<DecisionTreeModel>> trees,
                    std::size_t num_classes)
      : Model(num_classes), trees_(std::move(trees)) {}

  /// Soft vote: mean of the trees' leaf distributions.
  std::vector<double> predict_proba(std::span<const double> row) const override;
  void predict_proba_into(std::span<const double> row,
                          std::vector<double>& out) const override;

  std::size_t num_trees() const { return trees_.size(); }

 private:
  std::vector<std::unique_ptr<DecisionTreeModel>> trees_;
};

class RandomForestLearner : public Learner {
 public:
  explicit RandomForestLearner(RandomForestConfig config = {})
      : config_(config) {}

  std::unique_ptr<Model> train(const Dataset& data) const override;
  std::string name() const override { return "RF"; }

 private:
  RandomForestConfig config_;
};

}  // namespace frote
