// Shared split-search sorting kernel: a stable LSD byte-radix sort over
// monotone-mapped double keys with a small fixed payload. Introduced for
// the decision-tree split search (PR 4: RF train 2.92 → 1.81 ms) and reused
// by the GBDT split search — both replace a comparison sort that dominated
// training with branchless scatter passes, skipping passes whose byte is
// constant across the node (exponents of a narrow value range).
//
// Stability is load-bearing: callers feed pairs in ascending row order, so
// ties land exactly where a std::sort over (value, row) pairs put them, and
// any order-sensitive accumulation downstream (GBDT's gradient prefix
// sums) replays the same float-add sequence — trees stay bit-identical.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

namespace frote::detail {

/// Monotone map from a finite double to an unsigned key: a < b (as
/// doubles) ⇔ map(a) < map(b). The standard IEEE-754 flip: negative values
/// invert entirely, non-negative values flip the sign bit. Note -0.0 and
/// +0.0 map to *different* keys although they compare equal as doubles;
/// callers for whom that tie split matters must canonicalise first.
inline std::uint64_t split_value_key(double v) {
  std::uint64_t u;
  std::memcpy(&u, &v, sizeof u);
  return u ^ (u >> 63 != 0 ? ~std::uint64_t{0} : std::uint64_t{1} << 63);
}

inline double split_key_value(std::uint64_t key) {
  const std::uint64_t msb = std::uint64_t{1} << 63;
  const std::uint64_t u = (key & msb) != 0 ? key ^ msb : ~key;
  double v;
  std::memcpy(&v, &u, sizeof v);
  return v;
}

/// Stable LSD byte-radix over the m (key, payload) pairs already loaded
/// into keys[0] / payloads[0]; `hist` must hold the 8 × 256 per-byte counts
/// of keys[0] (the caller accumulates it while loading, saving a pass).
/// Both double-buffers are required to be size m. Returns the buffer index
/// (0 or 1) holding the sorted result. Passes whose byte is constant
/// across the range permute nothing and are skipped outright.
template <typename Payload>
int radix_sort_pairs(std::vector<std::uint64_t> (&keys)[2],
                     std::vector<Payload> (&payloads)[2],
                     const std::vector<std::uint32_t>& hist) {
  const std::size_t m = keys[0].size();
  int cur = 0;
  for (std::size_t b = 0; b < 8; ++b) {
    const std::uint32_t* h = hist.data() + b * 256;
    if (m > 0 && h[(keys[cur][0] >> (8 * b)) & 0xFF] == m) continue;
    std::uint32_t offsets[256];
    std::uint32_t sum = 0;
    for (std::size_t d = 0; d < 256; ++d) {
      offsets[d] = sum;
      sum += h[d];
    }
    const int alt = cur ^ 1;
    for (std::size_t i = 0; i < m; ++i) {
      const std::uint64_t key = keys[cur][i];
      const std::uint32_t pos = offsets[(key >> (8 * b)) & 0xFF]++;
      keys[alt][pos] = key;
      payloads[alt][pos] = payloads[cur][i];
    }
    cur = alt;
  }
  return cur;
}

}  // namespace frote::detail
