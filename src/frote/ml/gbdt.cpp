#include "frote/ml/gbdt.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <utility>

#include "frote/ml/logistic_regression.hpp"  // softmax_inplace
#include "frote/ml/split_radix.hpp"
#include "frote/util/parallel.hpp"

namespace frote {

namespace {
/// Rows per chunk for the gradient/hessian and score-update sweeps. Each row
/// is written independently, so any thread count is trivially bit-identical.
constexpr std::size_t kRowGrain = 512;
}  // namespace

double GbdtTree::predict(std::span<const double> row) const {
  if (nodes.empty()) return 0.0;
  int cur = 0;
  while (nodes[static_cast<std::size_t>(cur)].left >= 0) {
    const Node& n = nodes[static_cast<std::size_t>(cur)];
    const double x = row[n.feature];
    const bool go_left = n.categorical ? (x == n.threshold)
                                       : (x <= n.threshold);
    cur = go_left ? n.left : n.right;
  }
  return nodes[static_cast<std::size_t>(cur)].value;
}

GbdtModel::GbdtModel(std::vector<GbdtTree> trees, std::size_t num_classes,
                     std::size_t score_dims, double base_score)
    : Model(num_classes), trees_(std::move(trees)), score_dims_(score_dims),
      base_score_(base_score) {
  FROTE_CHECK(score_dims_ >= 1);
  FROTE_CHECK(trees_.size() % score_dims_ == 0);
}

std::vector<double> GbdtModel::predict_proba(
    std::span<const double> row) const {
  std::vector<double> out;
  predict_proba_into(row, out);
  return out;
}

void GbdtModel::predict_proba_into(std::span<const double> row,
                                   std::vector<double>& out) const {
  const std::size_t rounds = trees_.size() / score_dims_;
  if (score_dims_ == 1) {
    double score = base_score_;
    for (std::size_t r = 0; r < rounds; ++r) score += trees_[r].predict(row);
    const double p1 = 1.0 / (1.0 + std::exp(-score));
    out.assign(2, 0.0);
    out[0] = 1.0 - p1;
    out[1] = p1;
    return;
  }
  out.assign(score_dims_, base_score_);
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t k = 0; k < score_dims_; ++k) {
      out[k] += trees_[r * score_dims_ + k].predict(row);
    }
  }
  softmax_inplace(out);
}

namespace {

struct SplitChoice {
  std::size_t feature = 0;
  double threshold = 0.0;
  bool categorical = false;
  double gain = 0.0;
  bool valid = false;
};

/// Leaf under construction during leaf-wise growth.
struct Leaf {
  int node_id = 0;
  std::size_t depth = 0;
  std::vector<std::size_t> indices;
  double sum_g = 0.0, sum_h = 0.0;
  SplitChoice split;
};

struct LeafGainCmp {
  bool operator()(const Leaf* a, const Leaf* b) const {
    return a->split.gain < b->split.gain;
  }
};

class TreeGrower {
 public:
  TreeGrower(const Dataset& data, const std::vector<double>& g,
             const std::vector<double>& h, const GbdtConfig& config)
      : data_(data), g_(g), h_(h), config_(config) {}

  GbdtTree grow() {
    GbdtTree tree;
    auto root = std::make_unique<Leaf>();
    root->node_id = 0;
    tree.nodes.push_back({});
    root->indices.resize(data_.size());
    for (std::size_t i = 0; i < data_.size(); ++i) root->indices[i] = i;
    accumulate(*root);
    find_split(*root);

    std::vector<std::unique_ptr<Leaf>> leaves;
    std::priority_queue<Leaf*, std::vector<Leaf*>, LeafGainCmp> frontier;
    leaves.push_back(std::move(root));
    frontier.push(leaves.back().get());

    std::size_t num_leaves = 1;
    while (num_leaves < config_.max_leaves && !frontier.empty()) {
      Leaf* leaf = frontier.top();
      frontier.pop();
      if (!leaf->split.valid || leaf->split.gain <= 0.0) continue;

      auto left = std::make_unique<Leaf>();
      auto right = std::make_unique<Leaf>();
      left->depth = right->depth = leaf->depth + 1;
      for (std::size_t idx : leaf->indices) {
        const double x = data_.row(idx)[leaf->split.feature];
        const bool go_left = leaf->split.categorical
                                 ? (x == leaf->split.threshold)
                                 : (x <= leaf->split.threshold);
        (go_left ? left : right)->indices.push_back(idx);
      }
      if (left->indices.size() < config_.min_samples_leaf ||
          right->indices.size() < config_.min_samples_leaf) {
        continue;
      }
      accumulate(*left);
      accumulate(*right);

      left->node_id = static_cast<int>(tree.nodes.size());
      tree.nodes.push_back({});
      right->node_id = static_cast<int>(tree.nodes.size());
      tree.nodes.push_back({});
      // Take the parent reference only after the push_backs above: they can
      // reallocate the node vector.
      auto& parent = tree.nodes[static_cast<std::size_t>(leaf->node_id)];
      parent.feature = leaf->split.feature;
      parent.threshold = leaf->split.threshold;
      parent.categorical = leaf->split.categorical;
      parent.left = left->node_id;
      parent.right = right->node_id;

      if (left->depth < config_.max_depth) find_split(*left);
      if (right->depth < config_.max_depth) find_split(*right);
      frontier.push(left.get());
      frontier.push(right.get());
      leaves.push_back(std::move(left));
      leaves.push_back(std::move(right));
      ++num_leaves;
    }

    // Finalize leaf values: -G/(H+λ), damped by the learning rate.
    for (const auto& leaf : leaves) {
      auto& node = tree.nodes[static_cast<std::size_t>(leaf->node_id)];
      if (node.left < 0) {
        node.value = -config_.learning_rate * leaf->sum_g /
                     (leaf->sum_h + config_.lambda);
      }
    }
    return tree;
  }

 private:
  void accumulate(Leaf& leaf) {
    leaf.sum_g = leaf.sum_h = 0.0;
    for (std::size_t idx : leaf.indices) {
      leaf.sum_g += g_[idx];
      leaf.sum_h += h_[idx];
    }
  }

  double leaf_score(double g, double h) const {
    return g * g / (h + config_.lambda);
  }

  /// Per-round split search. Features are scored independently (each one
  /// produces its own local best) and combined in ascending feature order,
  /// so the chosen split is a pure function of the leaf — never of the
  /// thread count.
  void find_split(Leaf& leaf) {
    leaf.split = {};
    if (leaf.indices.size() < 2 * config_.min_samples_leaf) return;
    const double parent_score = leaf_score(leaf.sum_g, leaf.sum_h);
    leaf.split = parallel_reduce(
        data_.num_features(), 1, config_.threads, SplitChoice{},
        [&](std::size_t begin, std::size_t end) {
          SplitChoice local;
          for (std::size_t f = begin; f < end; ++f) {
            if (data_.schema().feature(f).is_categorical()) {
              eval_categorical(leaf, f, parent_score, local);
            } else {
              eval_numeric(leaf, f, parent_score, local);
            }
          }
          return local;
        },
        [](SplitChoice& acc, SplitChoice&& part) {
          if (part.valid && part.gain > acc.gain + 1e-12) acc = part;
        });
  }

  void try_update(const Leaf& leaf, SplitChoice& best, std::size_t feature,
                  double threshold, bool categorical, double gl, double hl,
                  double parent_score) const {
    const double gr = leaf.sum_g - gl;
    const double hr = leaf.sum_h - hl;
    if (hl < config_.min_child_weight || hr < config_.min_child_weight) return;
    const double gain =
        0.5 * (leaf_score(gl, hl) + leaf_score(gr, hr) - parent_score);
    if (gain > best.gain + 1e-12) {
      best = {feature, threshold, categorical, gain, true};
    }
  }

  void eval_categorical(const Leaf& leaf, std::size_t f, double parent_score,
                        SplitChoice& best) const {
    const std::size_t cardinality =
        data_.schema().feature(f).cardinality();
    std::vector<double> gs(cardinality, 0.0), hs(cardinality, 0.0);
    std::vector<std::size_t> counts(cardinality, 0);
    for (std::size_t idx : leaf.indices) {
      const auto code = static_cast<std::size_t>(data_.row(idx)[f]);
      gs[code] += g_[idx];
      hs[code] += h_[idx];
      counts[code]++;
    }
    for (std::size_t code = 0; code < cardinality; ++code) {
      if (counts[code] < config_.min_samples_leaf ||
          leaf.indices.size() - counts[code] < config_.min_samples_leaf) {
        continue;
      }
      try_update(leaf, best, f, static_cast<double>(code), true, gs[code],
                 hs[code], parent_score);
    }
  }

  void eval_numeric(const Leaf& leaf, std::size_t f, double parent_score,
                    SplitChoice& best) const {
    // One stable LSD radix sort over monotone-mapped keys (the shared
    // ml/split_radix.hpp kernel the DT split search adopted in PR 4) + one
    // prefix sweep over ascending cuts, replacing the comparison sort that
    // kept GBDT sort-bound. Bit-identity with the old std::sort over
    // (value, row) pairs: leaf index lists are ascending by construction
    // and the radix is stable, so ties land in ascending row order —
    // exactly std::sort's tie-break — and the g/h prefix sums replay the
    // same float-add sequence. -0.0 folds onto +0.0 so the two zero
    // encodings stay one tie group, as they were under double comparison.
    // find_split fans features out across pool threads, so the sort
    // scratch cannot live on the (shared) grower the way the DT version
    // hoists it; thread-local buffers amortise the allocations instead —
    // after warm-up each worker reuses its own.
    struct Scratch {
      std::vector<std::uint64_t> keys[2];
      std::vector<std::uint32_t> rows[2];
      std::vector<std::uint32_t> hist;
      std::vector<double> cuts;
    };
    thread_local Scratch scratch;
    const std::size_t m = leaf.indices.size();
    auto& keys = scratch.keys;
    auto& rows = scratch.rows;
    keys[0].resize(m);
    keys[1].resize(m);
    rows[0].resize(m);
    rows[1].resize(m);
    auto& hist = scratch.hist;
    hist.assign(8 * 256, 0);
    for (std::size_t i = 0; i < m; ++i) {
      double value = data_.row(leaf.indices[i])[f];
      if (value == 0.0) value = 0.0;  // canonicalise -0.0
      const std::uint64_t key = detail::split_value_key(value);
      keys[0][i] = key;
      rows[0][i] = static_cast<std::uint32_t>(leaf.indices[i]);
      for (std::size_t b = 0; b < 8; ++b) {
        ++hist[b * 256 + ((key >> (8 * b)) & 0xFF)];
      }
    }
    const int cur = detail::radix_sort_pairs(keys, rows, hist);
    const auto value_at = [&](std::size_t i) {
      return detail::split_key_value(keys[cur][i]);
    };
    if (keys[cur].front() == keys[cur].back()) return;
    auto& cuts = scratch.cuts;
    cuts.clear();
    const std::size_t k = std::min(config_.numeric_cuts, m - 1);
    for (std::size_t t = 1; t <= k; ++t) {
      const std::size_t pos = t * (m - 1) / (k + 1);
      cuts.push_back(value_at(pos) != value_at(pos + 1)
                         ? 0.5 * (value_at(pos) + value_at(pos + 1))
                         : value_at(pos));
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

    double gl = 0.0, hl = 0.0;
    std::size_t nl = 0;
    for (double cut : cuts) {
      while (nl < m && value_at(nl) <= cut) {
        gl += g_[rows[cur][nl]];
        hl += h_[rows[cur][nl]];
        ++nl;
      }
      if (nl < config_.min_samples_leaf ||
          m - nl < config_.min_samples_leaf) {
        continue;
      }
      try_update(leaf, best, f, cut, false, gl, hl, parent_score);
    }
  }

  const Dataset& data_;
  const std::vector<double>& g_;
  const std::vector<double>& h_;
  const GbdtConfig& config_;
};

/// The boosting loop shared by GbdtLearner::train and
/// GbdtAdditiveLearner::update: grow `rounds` further rounds of trees
/// against the current `scores` (row-major n x dims), appending to `trees`
/// and keeping `scores` in sync. Starting from zeroed scores and an empty
/// ensemble this IS the full training loop.
void boost_rounds(const Dataset& data, const GbdtConfig& config,
                  std::size_t dims, std::size_t rounds,
                  std::vector<double>& scores, std::vector<GbdtTree>& trees) {
  const std::size_t n = data.size();
  trees.reserve(trees.size() + rounds * dims);

  std::vector<double> g(n), h(n);
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t k = 0; k < dims; ++k) {
      // Gradients/hessians of logistic (binary) or softmax (multiclass)
      // loss. Every row is independent, so the sweep fans out over fixed
      // row chunks with no effect on the result.
      parallel_for(n, kRowGrain, config.threads,
                   [&](std::size_t begin, std::size_t end) {
                     std::vector<double> probs(dims);
                     for (std::size_t i = begin; i < end; ++i) {
                       if (dims == 1) {
                         const double p = 1.0 / (1.0 + std::exp(-scores[i]));
                         const double target =
                             data.label(i) == 1 ? 1.0 : 0.0;
                         g[i] = p - target;
                         h[i] = std::max(p * (1.0 - p), 1e-9);
                       } else {
                         for (std::size_t c = 0; c < dims; ++c) {
                           probs[c] = scores[i * dims + c];
                         }
                         softmax_inplace(probs);
                         const double p = probs[k];
                         const double target =
                             static_cast<std::size_t>(data.label(i)) == k
                                 ? 1.0
                                 : 0.0;
                         g[i] = p - target;
                         h[i] = std::max(p * (1.0 - p), 1e-9);
                       }
                     }
                   });
      TreeGrower grower(data, g, h, config);
      GbdtTree tree = grower.grow();
      parallel_for(n, kRowGrain, config.threads,
                   [&](std::size_t begin, std::size_t end) {
                     for (std::size_t i = begin; i < end; ++i) {
                       scores[i * dims + k] += tree.predict(data.row(i));
                     }
                   });
      trees.push_back(std::move(tree));
    }
  }
}

std::unique_ptr<Model> gbdt_full_train(const Dataset& data,
                                       const GbdtConfig& config) {
  FROTE_CHECK_MSG(!data.empty(), "cannot train on empty dataset");
  const std::size_t classes = data.num_classes();
  const std::size_t dims = classes == 2 ? 1 : classes;
  std::vector<double> scores(data.size() * dims, 0.0);
  std::vector<GbdtTree> trees;
  boost_rounds(data, config, dims, config.num_rounds, scores, trees);
  return std::make_unique<GbdtModel>(std::move(trees), classes, dims, 0.0);
}

}  // namespace

std::unique_ptr<Model> GbdtLearner::train(const Dataset& data) const {
  return gbdt_full_train(data, config_);
}

std::unique_ptr<Model> GbdtAdditiveLearner::train(const Dataset& data) const {
  return gbdt_full_train(data, config_);
}

std::unique_ptr<Model> GbdtAdditiveLearner::update(
    const Model& previous, const Dataset& data,
    std::size_t trained_rows) const {
  (void)trained_rows;
  FROTE_CHECK_MSG(!data.empty(), "cannot train on empty dataset");
  const std::size_t n = data.size();
  const std::size_t classes = data.num_classes();
  const std::size_t dims = classes == 2 ? 1 : classes;
  const auto* prev = dynamic_cast<const GbdtModel*>(&previous);
  if (prev == nullptr || prev->num_classes() != classes ||
      prev->score_dims() != dims || prev->base_score() != 0.0) {
    return gbdt_full_train(data, config_);
  }

  // Replay the previous ensemble's scores over the grown dataset (one
  // predict sweep — far cheaper than the rounds it stands in for), then
  // boost a few corrective rounds against the residuals.
  std::vector<GbdtTree> trees = prev->trees();
  std::vector<double> scores(n * dims, 0.0);
  const std::size_t rounds = trees.size() / dims;
  parallel_for(n, kRowGrain, config_.threads,
               [&](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) {
                   const auto row = data.row(i);
                   for (std::size_t r = 0; r < rounds; ++r) {
                     for (std::size_t k = 0; k < dims; ++k) {
                       scores[i * dims + k] +=
                           trees[r * dims + k].predict(row);
                     }
                   }
                 }
               });
  boost_rounds(data, config_, dims, config_.update_rounds, scores, trees);
  return std::make_unique<GbdtModel>(std::move(trees), classes, dims, 0.0);
}

}  // namespace frote
