// Multinomial logistic regression on one-hot + standardized features,
// matching the paper's scikit-learn LogisticRegression (max_iter = 500,
// otherwise defaults: L2 regularisation with C = 1). Optimised with
// full-batch gradient descent plus backtracking line search, which is ample
// at the problem sizes FROTE retrains at. The objective/gradient sweep runs
// on the sparse CSR encoding (one-hot blocks are mostly zeros) and is
// chunked through util/parallel.hpp — partial gradients and NLL are reduced
// in ascending chunk order, so any thread count produces identical weights.
#pragma once

#include "frote/data/encoder.hpp"
#include "frote/ml/model.hpp"

namespace frote {

struct LogisticRegressionConfig {
  std::size_t max_iter = 500;  // the paper's setting
  /// Inverse regularisation strength (sklearn's C); penalty = ||w||²/(2C).
  double c = 1.0;
  double tolerance = 1e-5;
  /// Threads for the objective/gradient sweep; 0 ⇒ FROTE_NUM_THREADS.
  int threads = 0;
};

class LogisticRegressionModel : public Model {
 public:
  LogisticRegressionModel(Encoder encoder, std::vector<double> weights,
                          std::size_t num_classes, std::size_t width);

  std::vector<double> predict_proba(std::span<const double> row) const override;
  void predict_proba_into(std::span<const double> row,
                          std::vector<double>& out) const override;

  /// Weight matrix entry for class `c`, encoded feature `j` (last column is
  /// the intercept). Exposed for tests and for the online-learning proxy.
  double weight(std::size_t c, std::size_t j) const;

 private:
  Encoder encoder_;
  std::vector<double> weights_;  // (num_classes) x (width + 1), row-major
  std::size_t width_;
};

class LogisticRegressionLearner : public Learner {
 public:
  explicit LogisticRegressionLearner(LogisticRegressionConfig config = {})
      : config_(config) {}

  std::unique_ptr<Model> train(const Dataset& data) const override;
  std::string name() const override { return "LR"; }

 private:
  LogisticRegressionConfig config_;
};

/// Softmax of a logit vector (stable; in-place).
void softmax_inplace(std::vector<double>& logits);

}  // namespace frote
