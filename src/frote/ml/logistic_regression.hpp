// Multinomial logistic regression on one-hot + standardized features,
// matching the paper's scikit-learn LogisticRegression (max_iter = 500,
// otherwise defaults: L2 regularisation with C = 1). Optimised with
// full-batch gradient descent plus backtracking line search, which is ample
// at the problem sizes FROTE retrains at. The objective/gradient sweep runs
// on the sparse CSR encoding (one-hot blocks are mostly zeros) and is
// chunked through util/parallel.hpp — partial gradients and NLL are reduced
// in ascending chunk order, so any thread count produces identical weights.
#pragma once

#include "frote/data/encoder.hpp"
#include "frote/ml/model.hpp"

namespace frote {

struct LogisticRegressionConfig {
  std::size_t max_iter = 500;  // the paper's setting
  /// Inverse regularisation strength (sklearn's C); penalty = ||w||²/(2C).
  double c = 1.0;
  double tolerance = 1e-5;
  /// Threads for the objective/gradient sweep; 0 ⇒ FROTE_NUM_THREADS.
  int threads = 0;
  /// Corrective-iteration cap for LogisticRegressionWarmLearner::update()
  /// (ignored by the exact learner). A warm start from the previous weights
  /// is already near the optimum, so a short budget suffices.
  std::size_t warm_max_iter = 25;
};

class LogisticRegressionModel : public Model {
 public:
  LogisticRegressionModel(Encoder encoder, std::vector<double> weights,
                          std::size_t num_classes, std::size_t width);

  std::vector<double> predict_proba(std::span<const double> row) const override;
  void predict_proba_into(std::span<const double> row,
                          std::vector<double>& out) const override;

  /// Weight matrix entry for class `c`, encoded feature `j` (last column is
  /// the intercept). Exposed for tests and for the online-learning proxy.
  double weight(std::size_t c, std::size_t j) const;

  /// Full weight matrix / encoded width — what a warm restart initialises
  /// from (LogisticRegressionWarmLearner::update).
  const std::vector<double>& weights() const { return weights_; }
  std::size_t encoded_width() const { return width_; }

 private:
  Encoder encoder_;
  std::vector<double> weights_;  // (num_classes) x (width + 1), row-major
  std::size_t width_;
};

class LogisticRegressionLearner : public Learner {
 public:
  explicit LogisticRegressionLearner(LogisticRegressionConfig config = {})
      : config_(config) {}

  std::unique_ptr<Model> train(const Dataset& data) const override;
  std::string name() const override { return "LR"; }

 private:
  LogisticRegressionConfig config_;
};

/// Opt-in approximate variant ("lr_warm" in the registry): train() is the
/// plain cold fit, but update() re-fits starting from the previous model's
/// weights with at most `warm_max_iter` corrective iterations. One-hot
/// widths are schema-determined (data/encoder.hpp), so the previous weight
/// matrix stays dimension-compatible as rows append; the fit is NOT
/// bit-identical to a cold retrain — sessions select this name to trade
/// exactness for an O(few-sweeps) accept path (docs/DESIGN.md §10).
class LogisticRegressionWarmLearner : public Learner {
 public:
  explicit LogisticRegressionWarmLearner(LogisticRegressionConfig config = {})
      : config_(config) {}

  std::unique_ptr<Model> train(const Dataset& data) const override;
  std::unique_ptr<Model> update(const Model& previous, const Dataset& data,
                                std::size_t trained_rows) const override;
  std::string name() const override { return "LR-warm"; }

 private:
  LogisticRegressionConfig config_;
};

/// Softmax of a logit vector (stable; in-place).
void softmax_inplace(std::vector<double>& logits);

}  // namespace frote
