#include "frote/data/schema.hpp"

#include <cmath>

namespace frote {

Schema::Schema(std::vector<FeatureSpec> features,
               std::vector<std::string> classes)
    : features_(std::move(features)), classes_(std::move(classes)) {
  FROTE_CHECK(!features_.empty());
  FROTE_CHECK_MSG(classes_.size() >= 2, "need at least two classes");
  for (const auto& f : features_) {
    if (!f.is_categorical()) ++num_numeric_;
  }
}

const FeatureSpec& Schema::feature(std::size_t i) const {
  FROTE_CHECK_MSG(i < features_.size(), "feature index " << i);
  return features_[i];
}

std::size_t Schema::feature_index(const std::string& name) const {
  for (std::size_t i = 0; i < features_.size(); ++i) {
    if (features_[i].name == name) return i;
  }
  throw Error("unknown feature: " + name);
}

std::size_t Schema::category_code(std::size_t f,
                                  const std::string& value) const {
  const auto& spec = feature(f);
  FROTE_CHECK_MSG(spec.is_categorical(), spec.name << " is numeric");
  for (std::size_t c = 0; c < spec.categories.size(); ++c) {
    if (spec.categories[c] == value) return c;
  }
  throw Error("unknown category '" + value + "' for feature " + spec.name);
}

void Schema::validate_row(const std::vector<double>& row) const {
  FROTE_CHECK_MSG(row.size() == features_.size(),
                  "row width " << row.size() << " != " << features_.size());
  for (std::size_t i = 0; i < row.size(); ++i) {
    const auto& spec = features_[i];
    FROTE_CHECK_MSG(std::isfinite(row[i]),
                    "non-finite value in feature " << spec.name);
    if (spec.is_categorical()) {
      const double code = row[i];
      FROTE_CHECK_MSG(code >= 0.0 && code == std::floor(code) &&
                          static_cast<std::size_t>(code) < spec.cardinality(),
                      "bad category code " << code << " for " << spec.name);
    }
  }
}

bool Schema::operator==(const Schema& other) const {
  if (classes_ != other.classes_) return false;
  if (features_.size() != other.features_.size()) return false;
  for (std::size_t i = 0; i < features_.size(); ++i) {
    const auto& a = features_[i];
    const auto& b = other.features_[i];
    if (a.name != b.name || a.type != b.type || a.categories != b.categories)
      return false;
  }
  return true;
}

}  // namespace frote
