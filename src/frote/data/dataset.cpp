#include "frote/data/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "frote/util/stats.hpp"

namespace frote {

std::atomic<std::uint64_t> Dataset::copies_{0};

std::uint64_t Dataset::next_uid() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

Dataset::Dataset(std::shared_ptr<const Schema> schema,
                 const StorageOptions& storage)
    : schema_(std::move(schema)), uid_(next_uid()) {
  FROTE_CHECK(schema_ != nullptr);
  values_.configure(schema_->num_features(), storage);
}

Dataset::Dataset(const Dataset& other)
    : schema_(other.schema_),
      values_(other.values_),
      labels_(other.labels_),
      row_ids_(other.row_ids_),
      uid_(next_uid()),
      version_(0),
      append_epoch_(0),
      next_row_id_(other.next_row_id_),
      staged_from_(other.staged_from_) {
  copies_.fetch_add(1, std::memory_order_relaxed);
}

Dataset& Dataset::operator=(const Dataset& other) {
  if (this == &other) return *this;
  schema_ = other.schema_;
  values_ = other.values_;
  labels_ = other.labels_;
  row_ids_ = other.row_ids_;
  uid_ = next_uid();
  bump(/*rewrites_existing_rows=*/true);
  next_row_id_ = other.next_row_id_;
  staged_from_ = other.staged_from_;
  copies_.fetch_add(1, std::memory_order_relaxed);
  return *this;
}

void Dataset::set_label(std::size_t i, int label) {
  FROTE_CHECK_MSG(i < size(), "row " << i << " out of " << size());
  FROTE_CHECK_MSG(label >= 0 && static_cast<std::size_t>(label) <
                                    schema().num_classes(),
                  "label " << label);
  labels_[i] = label;
  bump(/*rewrites_existing_rows=*/true);
}

void Dataset::push_row_unchecked(const double* features, int label) {
  values_.push_row(features);
  labels_.push_back(label);
  row_ids_.push_back(next_row_id_++);
}

void Dataset::add_row(const std::vector<double>& features, int label) {
  schema().validate_row(features);
  FROTE_CHECK_MSG(label >= 0 && static_cast<std::size_t>(label) <
                                    schema().num_classes(),
                  "label " << label);
  push_row_unchecked(features.data(), label);
  maybe_seal();
  bump(/*rewrites_existing_rows=*/false);
}

void Dataset::add_row(std::span<const double> features, int label) {
  add_row(std::vector<double>(features.begin(), features.end()), label);
}

void Dataset::append(const Dataset& other) {
  FROTE_CHECK_MSG(schema() == other.schema(), "schema mismatch in append");
  for (std::size_t i = 0; i < other.size(); ++i) {
    values_.push_row(other.values_.row(i));
    labels_.push_back(other.labels_[i]);
    row_ids_.push_back(next_row_id_++);
  }
  maybe_seal();
  bump(/*rewrites_existing_rows=*/false);
}

void Dataset::reserve_rows(std::size_t rows) {
  values_.reserve_rows(rows);
  labels_.reserve(rows);
  row_ids_.reserve(rows);
}

void Dataset::set_storage(const StorageOptions& storage) {
  FROTE_CHECK_MSG(!has_staged(), "set_storage on a dataset with staged rows");
  if (storage == values_.options()) return;
  ChunkStore next;
  next.configure(schema().num_features(), storage);
  next.reserve_rows(size());
  for (std::size_t i = 0; i < size(); ++i) {
    next.push_row(values_.row(i));
    next.seal();
  }
  values_ = std::move(next);
  // Rows moved to new addresses: pointer-holding consumers must refit.
  bump(/*rewrites_existing_rows=*/true);
}

std::size_t Dataset::stage_rows(const Dataset& other) {
  FROTE_CHECK_MSG(!has_staged(), "nested stage_rows without commit/rollback");
  const std::size_t first = size();
  staged_from_ = first;
  append(other);  // bumps version; sealing is deferred while staged
  return first;
}

void Dataset::commit() {
  FROTE_CHECK_MSG(has_staged(), "commit without staged rows");
  staged_from_ = kNoStage;
  maybe_seal();
  bump(/*rewrites_existing_rows=*/false);
}

void Dataset::rollback() {
  FROTE_CHECK_MSG(has_staged(), "rollback without staged rows");
  const std::size_t base = staged_from_;
  staged_from_ = kNoStage;
  values_.truncate(base);
  labels_.resize(base);
  row_ids_.resize(base);
  // Truncation leaves the surviving prefix byte-identical, so incremental
  // consumers fitted on [0, base) stay valid: no append_epoch bump.
  bump(/*rewrites_existing_rows=*/false);
}

void Dataset::restore_tracking(std::vector<std::uint64_t> row_ids,
                               std::uint64_t next_row_id,
                               std::uint64_t version,
                               std::uint64_t append_epoch) {
  FROTE_CHECK_MSG(row_ids.size() == size(),
                  "restore_tracking: " << row_ids.size() << " ids for "
                                       << size() << " rows");
  for (const std::uint64_t id : row_ids) {
    FROTE_CHECK_MSG(id < next_row_id,
                    "restore_tracking: row id " << id
                                                << " >= next_row_id counter");
  }
  row_ids_ = std::move(row_ids);
  next_row_id_ = next_row_id;
  version_ = version;
  append_epoch_ = append_epoch;
}

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  Dataset out(schema_, values_.options());
  out.reserve_rows(indices.size());
  for (std::size_t idx : indices) {
    FROTE_CHECK_MSG(idx < size(), "subset index " << idx);
    out.push_row_unchecked(values_.row(idx), labels_[idx]);
  }
  out.maybe_seal();
  out.bump(/*rewrites_existing_rows=*/false);
  return out;
}

void Dataset::remove_rows(std::vector<std::size_t> indices) {
  if (indices.empty()) return;
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
  FROTE_CHECK(indices.back() < size());
  ChunkStore new_values;
  new_values.configure(schema().num_features(), values_.options());
  std::vector<int> new_labels;
  std::vector<std::uint64_t> new_row_ids;
  new_values.reserve_rows(size() - indices.size());
  new_labels.reserve(labels_.size());
  new_row_ids.reserve(row_ids_.size());
  std::size_t next_removed = 0;
  for (std::size_t i = 0; i < size(); ++i) {
    if (next_removed < indices.size() && indices[next_removed] == i) {
      ++next_removed;
      continue;
    }
    new_values.push_row(values_.row(i));
    new_values.seal();
    new_labels.push_back(labels_[i]);
    new_row_ids.push_back(row_ids_[i]);
  }
  values_ = std::move(new_values);
  labels_ = std::move(new_labels);
  row_ids_ = std::move(new_row_ids);
  bump(/*rewrites_existing_rows=*/true);
}

std::vector<std::size_t> Dataset::class_counts() const {
  std::vector<std::size_t> counts(schema().num_classes(), 0);
  for (int y : labels_) counts[static_cast<std::size_t>(y)]++;
  return counts;
}

Dataset::ColumnStats Dataset::numeric_column_stats(std::size_t feature) const {
  FROTE_CHECK(feature < num_features());
  FROTE_CHECK_MSG(!schema().feature(feature).is_categorical(),
                  "stats requested on categorical column");
  RunningStats s;
  for (std::size_t i = 0; i < size(); ++i) s.add(row(i)[feature]);
  ColumnStats out;
  if (s.count() > 0) {
    out.mean = s.mean();
    out.stddev = s.stddev();
    out.min = s.min();
    out.max = s.max();
  }
  return out;
}

std::vector<std::size_t> Dataset::category_counts(std::size_t feature) const {
  const auto& spec = schema().feature(feature);
  FROTE_CHECK_MSG(spec.is_categorical(), "category_counts on numeric column");
  std::vector<std::size_t> counts(spec.cardinality(), 0);
  for (std::size_t i = 0; i < size(); ++i) {
    counts[static_cast<std::size_t>(row(i)[feature])]++;
  }
  return counts;
}

}  // namespace frote
