#include "frote/data/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "frote/util/stats.hpp"

namespace frote {

Dataset::Dataset(std::shared_ptr<const Schema> schema)
    : schema_(std::move(schema)) {
  FROTE_CHECK(schema_ != nullptr);
}

void Dataset::set_label(std::size_t i, int label) {
  FROTE_CHECK_MSG(i < size(), "row " << i << " out of " << size());
  FROTE_CHECK_MSG(label >= 0 && static_cast<std::size_t>(label) <
                                    schema().num_classes(),
                  "label " << label);
  labels_[i] = label;
}

void Dataset::add_row(const std::vector<double>& features, int label) {
  schema().validate_row(features);
  FROTE_CHECK_MSG(label >= 0 && static_cast<std::size_t>(label) <
                                    schema().num_classes(),
                  "label " << label);
  values_.insert(values_.end(), features.begin(), features.end());
  labels_.push_back(label);
}

void Dataset::add_row(std::span<const double> features, int label) {
  add_row(std::vector<double>(features.begin(), features.end()), label);
}

void Dataset::append(const Dataset& other) {
  FROTE_CHECK_MSG(schema() == other.schema(), "schema mismatch in append");
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  labels_.insert(labels_.end(), other.labels_.begin(), other.labels_.end());
}

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  Dataset out(schema_);
  const std::size_t w = schema().num_features();
  out.values_.reserve(indices.size() * w);
  out.labels_.reserve(indices.size());
  for (std::size_t idx : indices) {
    FROTE_CHECK_MSG(idx < size(), "subset index " << idx);
    out.values_.insert(out.values_.end(), values_.begin() + idx * w,
                       values_.begin() + (idx + 1) * w);
    out.labels_.push_back(labels_[idx]);
  }
  return out;
}

void Dataset::remove_rows(std::vector<std::size_t> indices) {
  if (indices.empty()) return;
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
  FROTE_CHECK(indices.back() < size());
  const std::size_t w = schema().num_features();
  std::vector<double> new_values;
  std::vector<int> new_labels;
  new_values.reserve(values_.size());
  new_labels.reserve(labels_.size());
  std::size_t next_removed = 0;
  for (std::size_t i = 0; i < size(); ++i) {
    if (next_removed < indices.size() && indices[next_removed] == i) {
      ++next_removed;
      continue;
    }
    new_values.insert(new_values.end(), values_.begin() + i * w,
                      values_.begin() + (i + 1) * w);
    new_labels.push_back(labels_[i]);
  }
  values_ = std::move(new_values);
  labels_ = std::move(new_labels);
}

std::vector<std::size_t> Dataset::class_counts() const {
  std::vector<std::size_t> counts(schema().num_classes(), 0);
  for (int y : labels_) counts[static_cast<std::size_t>(y)]++;
  return counts;
}

Dataset::ColumnStats Dataset::numeric_column_stats(std::size_t feature) const {
  FROTE_CHECK(feature < num_features());
  FROTE_CHECK_MSG(!schema().feature(feature).is_categorical(),
                  "stats requested on categorical column");
  RunningStats s;
  for (std::size_t i = 0; i < size(); ++i) s.add(row(i)[feature]);
  ColumnStats out;
  if (s.count() > 0) {
    out.mean = s.mean();
    out.stddev = s.stddev();
    out.min = s.min();
    out.max = s.max();
  }
  return out;
}

std::vector<std::size_t> Dataset::category_counts(std::size_t feature) const {
  const auto& spec = schema().feature(feature);
  FROTE_CHECK_MSG(spec.is_categorical(), "category_counts on numeric column");
  std::vector<std::size_t> counts(spec.cardinality(), 0);
  for (std::size_t i = 0; i < size(); ++i) {
    counts[static_cast<std::size_t>(row(i)[feature])]++;
  }
  return counts;
}

}  // namespace frote
