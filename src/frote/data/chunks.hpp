// Columnar chunk storage for Dataset feature values (docs/DESIGN.md §8).
//
// A Dataset's feature table is a struct-of-arrays triple — values, labels,
// row_ids — and this file owns the values column, the only one that grows
// past memory comfort (rows × features doubles). The store splits it into
// fixed-size *sealed* chunks plus one mutable tail:
//
//   [chunk 0][chunk 1]...[chunk m-1][   tail (growing vector)   ]
//    exactly chunk_rows rows each     < chunk_rows rows, or more
//                                     while a staged batch is open
//
// Rows stay row-major *within* a chunk, so Dataset::row(i) still hands out
// one contiguous span per row — every consumer of per-row spans (packed kNN
// rows, encoders, metrics) is untouched. Only whole-table contiguity
// (raw_values()) is lost once a chunk seals; the store reports that via
// contiguous() and the two consumers that cared (TreeBuilder, snapshot)
// have per-row fallbacks.
//
// Sealed chunks are immutable and shared (shared_ptr) between dataset
// copies: a copy shares every sealed chunk and deep-copies only the tail.
// Mutation never touches sealed bytes — rollback truncates the tail,
// remove_rows rebuilds a fresh store — so sharing is safe by construction.
//
// Sealing policy: full chunks move from the tail to the sealed list only at
// *commit points* (add_row/append outside a staged batch, commit() itself),
// never while rows are staged. That keeps Dataset::rollback() the same O(1)
// tail truncation it was on flat storage: the pre-stage size is always at
// or past the sealed boundary.
//
// mmap policy: with StorageOptions::mmap set, sealed chunks live in
// file-backed MAP_SHARED mappings over unlinked temp files instead of the
// heap, so the kernel may write chunk pages back and evict them under
// memory pressure — the process's resident set is bounded by the working
// set of chunks a scan actually touches, not the table size. The file is
// unlinked before use (no cleanup obligations) and the fd is closed once
// mapped. On platforms without POSIX mmap — or when any syscall fails —
// the store silently falls back to heap chunks: mmap is a residency
// optimisation, never a semantics change.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "frote/util/error.hpp"

namespace frote {

/// Storage geometry of a Dataset's feature table (DatasetSpec `chunk_rows`
/// / `mmap` map straight onto this).
struct StorageOptions {
  /// Rows per sealed chunk; 0 = one contiguous in-memory table (the
  /// pre-chunking layout, still the default).
  std::size_t chunk_rows = 0;
  /// Back sealed chunks with file-backed mmap (ignored when chunk_rows
  /// is 0; falls back to heap chunks when mapping is unavailable).
  bool mmap = false;

  bool operator==(const StorageOptions&) const = default;
};

namespace detail {

/// One sealed chunk: an immutable block of `doubles_` values, heap- or
/// mmap-backed. Construction copies the bytes in; nothing mutates after.
class Chunk {
 public:
  /// Build a chunk holding `count` doubles copied from `src`. `use_mmap`
  /// requests a file-backed mapping; heap is the fallback.
  static std::shared_ptr<const Chunk> make(const double* src,
                                           std::size_t count, bool use_mmap);
  ~Chunk();
  Chunk(const Chunk&) = delete;
  Chunk& operator=(const Chunk&) = delete;

  const double* data() const { return data_; }
  bool mapped() const { return map_bytes_ != 0; }

 private:
  Chunk() = default;

  std::vector<double> heap_;
  double* map_ = nullptr;        // non-null when mmap-backed
  std::size_t map_bytes_ = 0;
  const double* data_ = nullptr;
};

}  // namespace detail

/// The values column of a Dataset: sealed immutable chunks + mutable tail.
class ChunkStore {
 public:
  ChunkStore() = default;

  /// Set row width and geometry. Only legal while empty (Dataset
  /// constructs/rebuilds stores; it never reshapes one in place).
  void configure(std::size_t width, const StorageOptions& options);

  const StorageOptions& options() const { return options_; }
  std::size_t width() const { return width_; }
  std::size_t rows() const { return rows_; }

  /// Pointer to row i's `width()` contiguous values. No bounds check —
  /// Dataset::row() owns validation; hot loops call this straight.
  const double* row(std::size_t i) const {
    return i >= sealed_rows_
               ? tail_.data() + (i - sealed_rows_) * width_
               : sealed_[i / options_.chunk_rows]->data() +
                     (i % options_.chunk_rows) * width_;
  }

  /// True while every row lives in the tail (no chunk has sealed yet) —
  /// exactly when whole-table contiguous access is still available.
  bool contiguous() const { return sealed_.empty(); }
  /// The whole table as one span; caller must check contiguous().
  std::span<const double> contiguous_values() const {
    FROTE_CHECK_MSG(contiguous(),
                    "contiguous_values() on chunked storage ("
                        << sealed_.size() << " sealed chunks)");
    return {tail_.data(), tail_.size()};
  }

  std::size_t sealed_chunk_count() const { return sealed_.size(); }
  /// Sealed chunks plus the tail when non-empty — what server.stats and
  /// the checkpoint report as "chunks".
  std::size_t chunk_count() const {
    return sealed_.size() + (tail_.empty() ? 0 : 1);
  }
  std::size_t sealed_rows() const { return sealed_rows_; }
  /// Number of sealed chunks currently mmap-backed (test/stats hook).
  std::size_t mapped_chunk_count() const;

  /// Append one row of `width()` values to the tail.
  void push_row(const double* src);

  /// Move every full chunk_rows block from the tail into sealed chunks.
  /// No-op on unchunked stores. Dataset calls this only at commit points,
  /// never while a staged batch is open.
  void seal();

  /// Truncate to `new_rows` (the rollback path). Must not cut into sealed
  /// rows — guaranteed by the sealing policy: nothing seals while staged.
  void truncate(std::size_t new_rows);

  /// Reserve tail capacity toward `total_rows` total rows. On a chunked
  /// store the tail only ever holds ~a chunk plus one staged batch, so the
  /// reservation is capped at two chunks instead of the full table.
  void reserve_rows(std::size_t total_rows);

 private:
  StorageOptions options_;
  std::size_t width_ = 0;
  std::size_t rows_ = 0;
  std::size_t sealed_rows_ = 0;
  std::vector<std::shared_ptr<const detail::Chunk>> sealed_;
  std::vector<double> tail_;  // rows [sealed_rows_, rows_), row-major
};

}  // namespace frote
