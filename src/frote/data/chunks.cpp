#include "frote/data/chunks.hpp"

#include <algorithm>
#include <cstring>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#define FROTE_CHUNK_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cstdlib>
#endif

namespace frote {
namespace detail {

namespace {

#ifdef FROTE_CHUNK_HAVE_MMAP
/// Map `bytes` of a fresh unlinked temp file. Returns nullptr on any
/// failure — the caller falls back to the heap.
double* map_anonymous_file(std::size_t bytes) {
  const char* base = std::getenv("TMPDIR");
  std::string pattern = std::string(base != nullptr && *base != '\0'
                                        ? base
                                        : "/tmp") +
                        "/frote-chunk-XXXXXX";
  std::vector<char> path(pattern.begin(), pattern.end());
  path.push_back('\0');
  const int fd = ::mkstemp(path.data());
  if (fd < 0) return nullptr;
  // Unlink immediately: the mapping keeps the storage alive, the namespace
  // entry never outlives a crash.
  ::unlink(path.data());
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    ::close(fd);
    return nullptr;
  }
  void* mem = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd,
                     0);
  ::close(fd);  // the mapping holds its own reference
  if (mem == MAP_FAILED) return nullptr;
  return static_cast<double*>(mem);
}
#endif

}  // namespace

std::shared_ptr<const Chunk> Chunk::make(const double* src, std::size_t count,
                                         bool use_mmap) {
  // No make_shared: the constructor is private and the control block next
  // to an mmap-backed payload buys nothing.
  std::shared_ptr<Chunk> chunk(new Chunk());
#ifdef FROTE_CHUNK_HAVE_MMAP
  if (use_mmap && count > 0) {
    const std::size_t bytes = count * sizeof(double);
    if (double* mem = map_anonymous_file(bytes)) {
      std::memcpy(mem, src, bytes);
      chunk->map_ = mem;
      chunk->map_bytes_ = bytes;
      chunk->data_ = mem;
      return chunk;
    }
  }
#else
  (void)use_mmap;
#endif
  chunk->heap_.assign(src, src + count);
  chunk->data_ = chunk->heap_.data();
  return chunk;
}

Chunk::~Chunk() {
#ifdef FROTE_CHUNK_HAVE_MMAP
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
#endif
}

}  // namespace detail

void ChunkStore::configure(std::size_t width, const StorageOptions& options) {
  FROTE_CHECK_MSG(rows_ == 0, "ChunkStore::configure on a non-empty store");
  width_ = width;
  options_ = options;
}

std::size_t ChunkStore::mapped_chunk_count() const {
  std::size_t mapped = 0;
  for (const auto& chunk : sealed_) mapped += chunk->mapped() ? 1 : 0;
  return mapped;
}

void ChunkStore::push_row(const double* src) {
  tail_.insert(tail_.end(), src, src + width_);
  ++rows_;
}

void ChunkStore::seal() {
  if (options_.chunk_rows == 0 || width_ == 0) return;
  const std::size_t chunk_values = options_.chunk_rows * width_;
  std::size_t sealed = 0;
  while (tail_.size() - sealed >= chunk_values) {
    sealed_.push_back(detail::Chunk::make(tail_.data() + sealed,
                                          chunk_values, options_.mmap));
    sealed += chunk_values;
    sealed_rows_ += options_.chunk_rows;
  }
  if (sealed > 0) {
    tail_.erase(tail_.begin(),
                tail_.begin() + static_cast<std::ptrdiff_t>(sealed));
  }
}

void ChunkStore::truncate(std::size_t new_rows) {
  FROTE_CHECK_MSG(new_rows >= sealed_rows_ && new_rows <= rows_,
                  "ChunkStore::truncate to " << new_rows << " with "
                                             << sealed_rows_ << " sealed of "
                                             << rows_ << " rows");
  tail_.resize((new_rows - sealed_rows_) * width_);
  rows_ = new_rows;
}

void ChunkStore::reserve_rows(std::size_t total_rows) {
  if (total_rows <= sealed_rows_) return;
  std::size_t tail_rows = total_rows - sealed_rows_;
  if (options_.chunk_rows != 0) {
    // The tail never holds more than one partial chunk plus a staged batch
    // for long — reserving the whole table would defeat the point of
    // chunking. Two chunks of headroom covers the steady state.
    tail_rows = std::min(tail_rows, options_.chunk_rows * 2);
  }
  tail_.reserve(tail_rows * width_);
}

}  // namespace frote
