#include "frote/data/split.hpp"

#include <algorithm>

namespace frote {

TrainTestSplit random_split(const Dataset& data, double train_fraction,
                            Rng& rng) {
  FROTE_CHECK(train_fraction >= 0.0 && train_fraction <= 1.0);
  std::vector<std::size_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  const auto n_train = static_cast<std::size_t>(
      train_fraction * static_cast<double>(data.size()));
  std::vector<std::size_t> train_idx(order.begin(), order.begin() + n_train);
  std::vector<std::size_t> test_idx(order.begin() + n_train, order.end());
  return {data.subset(train_idx), data.subset(test_idx)};
}

TrainTestSplit coverage_split(const Dataset& data,
                              const std::vector<std::size_t>& coverage_indices,
                              double tcf, double outside_train_fraction,
                              Rng& rng) {
  FROTE_CHECK(tcf >= 0.0 && tcf <= 1.0);
  FROTE_CHECK(outside_train_fraction >= 0.0 && outside_train_fraction <= 1.0);
  std::vector<bool> covered(data.size(), false);
  for (std::size_t idx : coverage_indices) {
    FROTE_CHECK(idx < data.size());
    covered[idx] = true;
  }
  std::vector<std::size_t> cov, outside;
  for (std::size_t i = 0; i < data.size(); ++i) {
    (covered[i] ? cov : outside).push_back(i);
  }
  rng.shuffle(cov);
  rng.shuffle(outside);

  const auto n_cov_train =
      static_cast<std::size_t>(tcf * static_cast<double>(cov.size()));
  const auto n_out_train = static_cast<std::size_t>(
      outside_train_fraction * static_cast<double>(outside.size()));

  std::vector<std::size_t> train_idx, test_idx;
  train_idx.insert(train_idx.end(), outside.begin(),
                   outside.begin() + n_out_train);
  test_idx.insert(test_idx.end(), outside.begin() + n_out_train,
                  outside.end());
  train_idx.insert(train_idx.end(), cov.begin(), cov.begin() + n_cov_train);
  test_idx.insert(test_idx.end(), cov.begin() + n_cov_train, cov.end());
  // Shuffle so training row order carries no coverage signal.
  rng.shuffle(train_idx);
  rng.shuffle(test_idx);
  return {data.subset(train_idx), data.subset(test_idx)};
}

}  // namespace frote
