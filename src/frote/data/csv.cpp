#include "frote/data/csv.hpp"

#include <fstream>
#include <memory>
#include <sstream>

#include "frote/util/error.hpp"

namespace frote {

namespace {

std::vector<std::string> split_on(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : s) {
    if (ch == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(ch);
    }
  }
  out.push_back(cur);
  return out;
}

std::string join(const std::vector<std::string>& parts, char sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.push_back(sep);
    out += parts[i];
  }
  return out;
}

}  // namespace

void save_csv(const Dataset& data, std::ostream& os) {
  const Schema& schema = data.schema();
  // Schema line.
  os << "#schema,";
  std::vector<std::string> specs;
  for (const auto& f : schema.features()) {
    if (f.is_categorical()) {
      specs.push_back(f.name + ":cat{" + join(f.categories, '|') + "}");
    } else {
      specs.push_back(f.name + ":num");
    }
  }
  specs.push_back("label{" + join(schema.class_names(), '|') + "}");
  os << join(specs, ',') << '\n';
  // Header row.
  std::vector<std::string> header;
  for (const auto& f : schema.features()) header.push_back(f.name);
  header.push_back("label");
  os << join(header, ',') << '\n';
  // Data rows.
  for (std::size_t i = 0; i < data.size(); ++i) {
    auto row = data.row(i);
    std::vector<std::string> cells;
    for (std::size_t f = 0; f < row.size(); ++f) {
      const auto& spec = schema.feature(f);
      if (spec.is_categorical()) {
        cells.push_back(spec.categories[static_cast<std::size_t>(row[f])]);
      } else {
        std::ostringstream cell;
        cell.precision(17);
        cell << row[f];
        cells.push_back(cell.str());
      }
    }
    cells.push_back(
        schema.class_names()[static_cast<std::size_t>(data.label(i))]);
    os << join(cells, ',') << '\n';
  }
}

void save_csv(const Dataset& data, const std::string& path) {
  std::ofstream os(path);
  FROTE_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  save_csv(data, os);
}

Dataset load_csv(std::istream& is) {
  std::string line;
  FROTE_CHECK_MSG(std::getline(is, line), "empty CSV stream");
  FROTE_CHECK_MSG(line.rfind("#schema,", 0) == 0, "missing #schema line");
  const auto specs = split_on(line.substr(8), ',');
  FROTE_CHECK(specs.size() >= 2);

  std::vector<FeatureSpec> features;
  std::vector<std::string> classes;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const std::string& spec = specs[i];
    if (i + 1 == specs.size()) {
      FROTE_CHECK_MSG(spec.rfind("label{", 0) == 0 && spec.back() == '}',
                      "bad label spec: " << spec);
      classes = split_on(spec.substr(6, spec.size() - 7), '|');
      break;
    }
    const auto colon = spec.find(':');
    FROTE_CHECK_MSG(colon != std::string::npos, "bad feature spec: " << spec);
    const std::string name = spec.substr(0, colon);
    const std::string kind = spec.substr(colon + 1);
    if (kind == "num") {
      features.push_back(FeatureSpec::numeric(name));
    } else {
      FROTE_CHECK_MSG(kind.rfind("cat{", 0) == 0 && kind.back() == '}',
                      "bad feature spec: " << spec);
      features.push_back(FeatureSpec::categorical(
          name, split_on(kind.substr(4, kind.size() - 5), '|')));
    }
  }
  auto schema = std::make_shared<Schema>(std::move(features), std::move(classes));

  FROTE_CHECK_MSG(std::getline(is, line), "missing header row");
  Dataset data(schema);
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto cells = split_on(line, ',');
    FROTE_CHECK_MSG(cells.size() == schema->num_features() + 1,
                    "bad row width: " << line);
    std::vector<double> row(schema->num_features());
    for (std::size_t f = 0; f < schema->num_features(); ++f) {
      const auto& spec = schema->feature(f);
      if (spec.is_categorical()) {
        row[f] = static_cast<double>(schema->category_code(f, cells[f]));
      } else {
        row[f] = std::stod(cells[f]);
      }
    }
    int label = -1;
    for (std::size_t c = 0; c < schema->num_classes(); ++c) {
      if (schema->class_names()[c] == cells.back()) {
        label = static_cast<int>(c);
        break;
      }
    }
    FROTE_CHECK_MSG(label >= 0, "unknown class: " << cells.back());
    data.add_row(row, label);
  }
  return data;
}

Dataset load_csv(const std::string& path) {
  std::ifstream is(path);
  FROTE_CHECK_MSG(is.good(), "cannot open " << path);
  return load_csv(is);
}

}  // namespace frote
