// Train/test splitting, including the paper's coverage-aware split (§5.1):
// the dataset is partitioned into rule coverage and outside-coverage parts;
// outside-coverage is split 80/20 (or a given ratio), and a *training
// coverage fraction* (tcf) of the coverage set goes to training, the rest to
// test. tcf = 0 models a brand-new rule with no support in training data.
#pragma once

#include <cstddef>
#include <vector>

#include "frote/data/dataset.hpp"
#include "frote/util/rng.hpp"

namespace frote {

struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Plain random split: `train_fraction` of rows to train, rest to test.
TrainTestSplit random_split(const Dataset& data, double train_fraction,
                            Rng& rng);

/// Coverage-aware split per §5.1. `coverage_indices` are the rows covered by
/// the feedback rule set; they are sent to train with probability controlled
/// by `tcf` (exactly ⌊tcf·|cov|⌋ random covered rows go to train). Rows
/// outside coverage are split by `outside_train_fraction` (0.8 in Fig 2,
/// 0.5 in the Overlay comparison).
TrainTestSplit coverage_split(const Dataset& data,
                              const std::vector<std::size_t>& coverage_indices,
                              double tcf, double outside_train_fraction,
                              Rng& rng);

}  // namespace frote
