// CSV persistence for datasets: save/load with a schema header line so that
// augmented datasets produced by FROTE can be inspected or round-tripped
// into other tools. Format:
//
//   #schema,<feat>:num | <feat>:cat{a|b|c},...,label{c0|c1}
//   <header row with feature names and "label">
//   <data rows; categorical cells are written as category names>
#pragma once

#include <iosfwd>
#include <string>

#include "frote/data/dataset.hpp"

namespace frote {

void save_csv(const Dataset& data, std::ostream& os);
void save_csv(const Dataset& data, const std::string& path);

Dataset load_csv(std::istream& is);
Dataset load_csv(const std::string& path);

}  // namespace frote
