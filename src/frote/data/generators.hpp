// Synthetic stand-ins for the paper's eight UCI benchmark datasets (Table 1).
//
// The real UCI files are not available offline, so each dataset is simulated
// by a seeded generator that matches the paper's schema exactly — number of
// instances, numeric/nominal feature split, number of classes — and labels
// rows with a structured latent model (per-class linear scores over
// standardized numerics, per-category effects, a few pairwise interactions,
// plus calibrated class-prior biases and label noise). This preserves what
// FROTE's experiments need: learnable mixed-type structure from which rules
// can be induced, perturbed and re-taught. See docs/DESIGN.md §2.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "frote/data/dataset.hpp"

namespace frote {

enum class UciDataset {
  kAdult,
  kBreastCancer,
  kNursery,
  kWineQuality,
  kMushroom,
  kContraceptive,
  kCar,
  kSplice,
};

struct DatasetInfo {
  UciDataset id = UciDataset::kAdult;
  std::string name;
  std::size_t paper_size = 0;      // #Ins in Table 1
  std::size_t num_numeric = 0;     // Table 1 #Feat numeric part
  std::size_t num_categorical = 0; // Table 1 #Feat nominal part
  std::size_t num_classes = 0;     // Table 1 #Labels
};

/// Static properties of all eight datasets (Table 1 rows).
const std::vector<DatasetInfo>& all_datasets();
const DatasetInfo& dataset_info(UciDataset id);
UciDataset dataset_by_name(const std::string& name);

/// Generate the dataset. `size == 0` uses the paper's instance count;
/// experiments pass a scaled size to bound runtime (FROTE_SCALE).
Dataset make_dataset(UciDataset id, std::size_t size = 0,
                     std::uint64_t seed = 42);

/// Blueprint overrides for scenario generators (core/scenario.hpp): an
/// unset/empty field keeps the dataset's blueprint default. Schema and
/// Table 1 invariants are unaffected — overrides only reshape labels.
struct GeneratorOverrides {
  std::optional<double> label_noise;    // [0, 1)
  std::vector<double> class_weights;    // one weight per class; empty = keep
};

/// Override-taking form of make_dataset; the no-override call is
/// bit-identical to the plain form. Throws frote::Error on out-of-range
/// overrides (wrong class_weights arity, label_noise outside [0, 1)).
Dataset make_dataset(UciDataset id, std::size_t size, std::uint64_t seed,
                     const GeneratorOverrides& overrides);

/// The schema `make_dataset(id, ...)` would produce, without generating any
/// rows — the cheap surface declarative validation parses rule text against.
Schema dataset_schema(UciDataset id);

/// Binary datasets used in the Overlay comparison (§5.2 / Table 2): Breast
/// Cancer, Mushroom, Adult.
std::vector<UciDataset> binary_datasets();

}  // namespace frote
