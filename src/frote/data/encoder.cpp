#include "frote/data/encoder.hpp"

#include <cmath>

namespace frote {

Encoder Encoder::fit(const Dataset& data) {
  FROTE_CHECK_MSG(!data.empty(), "cannot fit encoder on empty dataset");
  Encoder enc;
  std::size_t offset = 0;
  for (std::size_t f = 0; f < data.num_features(); ++f) {
    const auto& spec = data.schema().feature(f);
    ColumnPlan plan;
    plan.offset = offset;
    if (spec.is_categorical()) {
      plan.categorical = true;
      plan.cardinality = spec.cardinality();
      offset += plan.cardinality;
    } else {
      const auto stats = data.numeric_column_stats(f);
      plan.mean = stats.mean;
      plan.inv_std = stats.stddev > 1e-12 ? 1.0 / stats.stddev : 1.0;
      offset += 1;
    }
    enc.plans_.push_back(plan);
  }
  enc.width_ = offset;
  return enc;
}

std::vector<double> Encoder::transform(std::span<const double> row) const {
  std::vector<double> out;
  transform_into(row, out);
  return out;
}

void Encoder::transform_into(std::span<const double> row,
                             std::vector<double>& out) const {
  FROTE_CHECK_MSG(row.size() == plans_.size(),
                  "row width " << row.size() << " != " << plans_.size());
  out.assign(width_, 0.0);
  for (std::size_t f = 0; f < plans_.size(); ++f) {
    const auto& plan = plans_[f];
    if (plan.categorical) {
      auto code = static_cast<std::size_t>(row[f]);
      // Codes outside the fitted cardinality encode as all-zeros: unseen
      // category. Coverage logic elsewhere guarantees valid codes, but the
      // encoder stays total for robustness.
      if (code < plan.cardinality) out[plan.offset + code] = 1.0;
    } else {
      out[plan.offset] = (row[f] - plan.mean) * plan.inv_std;
    }
  }
}

Encoder::SparseRows Encoder::sparse_transform_all(const Dataset& data) const {
  SparseRows out;
  out.index.reserve(data.size() * plans_.size());
  out.value.reserve(data.size() * plans_.size());
  out.row_begin.reserve(data.size() + 1);
  out.row_begin.push_back(0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto row = data.row(i);
    FROTE_CHECK_MSG(row.size() == plans_.size(),
                    "row width " << row.size() << " != " << plans_.size());
    for (std::size_t f = 0; f < plans_.size(); ++f) {
      const auto& plan = plans_[f];
      if (plan.categorical) {
        const auto code = static_cast<std::size_t>(row[f]);
        if (code < plan.cardinality) {
          out.index.push_back(static_cast<std::uint32_t>(plan.offset + code));
          out.value.push_back(1.0);
        }
      } else {
        out.index.push_back(static_cast<std::uint32_t>(plan.offset));
        out.value.push_back((row[f] - plan.mean) * plan.inv_std);
      }
    }
    out.row_begin.push_back(out.index.size());
  }
  return out;
}

std::vector<double> Encoder::transform_all(const Dataset& data) const {
  std::vector<double> out;
  out.reserve(data.size() * width_);
  for (std::size_t i = 0; i < data.size(); ++i) {
    auto enc = transform(data.row(i));
    out.insert(out.end(), enc.begin(), enc.end());
  }
  return out;
}

}  // namespace frote
