// Feature schema for mixed-type tabular data.
//
// Cells are stored as doubles everywhere (row-major); the schema layer is
// what gives categorical columns their meaning: a categorical cell holds a
// non-negative integer category code, and the schema maps codes back to
// category names. This mirrors the encoded-categorical convention of the
// Python tabular stack the paper uses, without a tagged union per cell.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "frote/util/error.hpp"

namespace frote {

enum class FeatureType { kNumeric, kCategorical };

/// One column of the table: name, type and (for categoricals) category names.
struct FeatureSpec {
  std::string name;
  FeatureType type = FeatureType::kNumeric;
  /// Category names; size() is the cardinality. Empty for numeric features.
  std::vector<std::string> categories;

  bool is_categorical() const { return type == FeatureType::kCategorical; }
  std::size_t cardinality() const { return categories.size(); }

  static FeatureSpec numeric(std::string name) {
    return FeatureSpec{std::move(name), FeatureType::kNumeric, {}};
  }
  static FeatureSpec categorical(std::string name,
                                 std::vector<std::string> categories) {
    FROTE_CHECK(!categories.empty());
    return FeatureSpec{std::move(name), FeatureType::kCategorical,
                       std::move(categories)};
  }
};

/// Schema: ordered feature specs plus the label's class names.
class Schema {
 public:
  Schema() = default;
  Schema(std::vector<FeatureSpec> features, std::vector<std::string> classes);

  std::size_t num_features() const { return features_.size(); }
  std::size_t num_classes() const { return classes_.size(); }
  const FeatureSpec& feature(std::size_t i) const;
  const std::vector<FeatureSpec>& features() const { return features_; }
  const std::vector<std::string>& class_names() const { return classes_; }

  /// Index of the feature with the given name; throws if absent.
  std::size_t feature_index(const std::string& name) const;

  /// Category code of `value` in feature `f`; throws if absent.
  std::size_t category_code(std::size_t f, const std::string& value) const;

  std::size_t num_numeric() const { return num_numeric_; }
  std::size_t num_categorical() const {
    return features_.size() - num_numeric_;
  }

  /// Validate a raw row against this schema (category codes in range,
  /// numerics finite). Throws on violation.
  void validate_row(const std::vector<double>& row) const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<FeatureSpec> features_;
  std::vector<std::string> classes_;
  std::size_t num_numeric_ = 0;
};

}  // namespace frote
