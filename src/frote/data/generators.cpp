#include "frote/data/generators.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <memory>

#include "frote/util/rng.hpp"

namespace frote {

namespace {

// ---------------------------------------------------------------------------
// Feature blueprints
// ---------------------------------------------------------------------------

enum class NumDist { kNormal, kLogNormal, kUniform };

struct NumBlueprint {
  std::string name;
  NumDist dist = NumDist::kNormal;
  double a = 0.0;  // Normal: mean; LogNormal: mu; Uniform: lo
  double b = 1.0;  // Normal: std;  LogNormal: sigma; Uniform: hi
};

struct CatBlueprint {
  std::string name;
  std::vector<std::string> values;
  /// Unnormalised category prior; empty ⇒ uniform.
  std::vector<double> weights;
};

struct DatasetBlueprint {
  std::vector<NumBlueprint> numeric;
  std::vector<CatBlueprint> categorical;
  std::vector<std::string> classes;
  /// Target class proportions (unnormalised); empty ⇒ uniform.
  std::vector<double> class_weights;
  double label_noise = 0.06;
  std::uint64_t structure_seed = 1;  // seed stream for the latent labeler
};

std::vector<std::string> generic_values(const std::string& prefix,
                                        std::size_t n) {
  std::vector<std::string> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(prefix + std::to_string(i));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Latent labeler: per-class linear scores over standardized numerics,
// per-category effects and a few numeric×numeric interactions, with biases
// calibrated to the target class proportions.
// ---------------------------------------------------------------------------

class LatentLabeler {
 public:
  LatentLabeler(const DatasetBlueprint& bp, const Schema& schema,
                std::uint64_t seed)
      : bp_(bp), schema_(schema), rng_(seed) {
    const std::size_t classes = schema.num_classes();
    const std::size_t d = schema.num_features();
    weights_.assign(classes, std::vector<double>(d, 0.0));
    cat_effects_.assign(classes, {});
    for (std::size_t c = 0; c < classes; ++c) {
      cat_effects_[c].resize(d);
      for (std::size_t f = 0; f < d; ++f) {
        const auto& spec = schema.feature(f);
        if (spec.is_categorical()) {
          cat_effects_[c][f].resize(spec.cardinality());
          for (auto& e : cat_effects_[c][f]) e = rng_.normal(0.0, 1.0);
        } else {
          weights_[c][f] = rng_.normal(0.0, 1.0);
        }
      }
    }
    // A few pairwise numeric interactions for non-linearity.
    std::vector<std::size_t> numeric_features;
    for (std::size_t f = 0; f < d; ++f) {
      if (!schema.feature(f).is_categorical()) numeric_features.push_back(f);
    }
    const std::size_t n_inter =
        std::min<std::size_t>(3, numeric_features.size() / 2);
    for (std::size_t i = 0; i < n_inter; ++i) {
      Interaction inter;
      inter.f1 = numeric_features[rng_.index(numeric_features.size())];
      inter.f2 = numeric_features[rng_.index(numeric_features.size())];
      inter.coef.resize(classes);
      for (auto& c : inter.coef) c = rng_.normal(0.0, 0.6);
      interactions_.push_back(inter);
    }
    biases_.assign(classes, 0.0);
  }

  /// Calibrate class biases on a pilot sample so argmax labels roughly hit
  /// the target proportions.
  void calibrate(const std::vector<std::vector<double>>& pilot_rows,
                 const std::vector<double>& standardizers_mean,
                 const std::vector<double>& standardizers_inv_std) {
    means_ = standardizers_mean;
    inv_stds_ = standardizers_inv_std;
    std::vector<double> target(schema_.num_classes(),
                               1.0 / static_cast<double>(schema_.num_classes()));
    if (!bp_.class_weights.empty()) {
      double total = 0.0;
      for (double w : bp_.class_weights) total += w;
      for (std::size_t c = 0; c < target.size(); ++c) {
        target[c] = bp_.class_weights[c] / total;
      }
    }
    for (int round = 0; round < 12; ++round) {
      std::vector<double> counts(schema_.num_classes(), 0.0);
      for (const auto& row : pilot_rows) {
        counts[static_cast<std::size_t>(argmax_label(row))] += 1.0;
      }
      for (std::size_t c = 0; c < counts.size(); ++c) {
        const double observed =
            std::max(counts[c] / static_cast<double>(pilot_rows.size()), 1e-3);
        biases_[c] += 0.5 * std::log(target[c] / observed);
      }
    }
  }

  int label(const std::vector<double>& row, Rng& noise_rng) const {
    int y = argmax_label(row);
    if (noise_rng.bernoulli(bp_.label_noise)) {
      // Flip to a uniformly random *other* class.
      std::size_t draw = noise_rng.index(schema_.num_classes() - 1);
      if (draw >= static_cast<std::size_t>(y)) ++draw;
      y = static_cast<int>(draw);
    }
    return y;
  }

 private:
  int argmax_label(const std::vector<double>& row) const {
    double best = -1e300;
    int best_c = 0;
    for (std::size_t c = 0; c < weights_.size(); ++c) {
      double score = biases_[c];
      for (std::size_t f = 0; f < row.size(); ++f) {
        const auto& spec = schema_.feature(f);
        if (spec.is_categorical()) {
          score += cat_effects_[c][f][static_cast<std::size_t>(row[f])];
        } else {
          score += weights_[c][f] * (row[f] - means_[f]) * inv_stds_[f];
        }
      }
      for (const auto& inter : interactions_) {
        const double z1 = (row[inter.f1] - means_[inter.f1]) *
                          inv_stds_[inter.f1];
        const double z2 = (row[inter.f2] - means_[inter.f2]) *
                          inv_stds_[inter.f2];
        score += inter.coef[c] * z1 * z2;
      }
      if (score > best) {
        best = score;
        best_c = static_cast<int>(c);
      }
    }
    return best_c;
  }

  struct Interaction {
    std::size_t f1 = 0, f2 = 0;
    std::vector<double> coef;
  };

  const DatasetBlueprint& bp_;
  const Schema& schema_;
  Rng rng_;
  std::vector<std::vector<double>> weights_;  // class x feature (numeric)
  std::vector<std::vector<std::vector<double>>> cat_effects_;  // class x feat x code
  std::vector<Interaction> interactions_;
  std::vector<double> biases_;
  std::vector<double> means_, inv_stds_;
};

double sample_numeric(const NumBlueprint& nb, Rng& rng) {
  switch (nb.dist) {
    case NumDist::kNormal: return rng.normal(nb.a, nb.b);
    case NumDist::kLogNormal: return std::exp(rng.normal(nb.a, nb.b));
    case NumDist::kUniform: return rng.uniform(nb.a, nb.b);
  }
  return 0.0;
}

std::vector<FeatureSpec> schema_specs(const DatasetBlueprint& bp) {
  std::vector<FeatureSpec> specs;
  for (const auto& nb : bp.numeric) specs.push_back(FeatureSpec::numeric(nb.name));
  for (const auto& cb : bp.categorical) {
    specs.push_back(FeatureSpec::categorical(cb.name, cb.values));
  }
  return specs;
}

/// Apply scenario overrides to a blueprint copy; throws on out-of-range
/// values so declarative callers surface a typed error, not a bad dataset.
DatasetBlueprint with_overrides(DatasetBlueprint bp,
                                const GeneratorOverrides& overrides) {
  if (overrides.label_noise.has_value()) {
    if (*overrides.label_noise < 0.0 || *overrides.label_noise >= 1.0) {
      throw Error("label_noise must be in [0, 1)");
    }
    bp.label_noise = *overrides.label_noise;
  }
  if (!overrides.class_weights.empty()) {
    if (overrides.class_weights.size() != bp.classes.size()) {
      throw Error("class_weights must have " +
                  std::to_string(bp.classes.size()) + " entries, got " +
                  std::to_string(overrides.class_weights.size()));
    }
    double total = 0.0;
    for (double w : overrides.class_weights) {
      if (!(w >= 0.0)) throw Error("class_weights must be non-negative");
      total += w;
    }
    if (!(total > 0.0)) throw Error("class_weights must sum to > 0");
    bp.class_weights = overrides.class_weights;
  }
  return bp;
}

Dataset generate(const DatasetBlueprint& bp, std::size_t size,
                 std::uint64_t seed) {
  FROTE_CHECK(size > 0);
  auto schema = std::make_shared<Schema>(schema_specs(bp), bp.classes);

  Rng rng(derive_seed(seed, 0));
  // Sample raw feature rows.
  std::vector<std::vector<double>> rows(size);
  for (auto& row : rows) {
    row.reserve(schema->num_features());
    for (const auto& nb : bp.numeric) row.push_back(sample_numeric(nb, rng));
    for (const auto& cb : bp.categorical) {
      std::size_t code;
      if (cb.weights.empty()) {
        code = rng.index(cb.values.size());
      } else {
        code = rng.categorical(cb.weights);
      }
      row.push_back(static_cast<double>(code));
    }
  }

  // Standardizers for the labeler (population moments of the sample).
  std::vector<double> means(schema->num_features(), 0.0);
  std::vector<double> inv_stds(schema->num_features(), 1.0);
  for (std::size_t f = 0; f < bp.numeric.size(); ++f) {
    double mean = 0.0;
    for (const auto& row : rows) mean += row[f];
    mean /= static_cast<double>(size);
    double var = 0.0;
    for (const auto& row : rows) var += (row[f] - mean) * (row[f] - mean);
    var /= static_cast<double>(size);
    means[f] = mean;
    inv_stds[f] = var > 1e-12 ? 1.0 / std::sqrt(var) : 1.0;
  }

  LatentLabeler labeler(bp, *schema, derive_seed(bp.structure_seed, 7));
  // Calibrate on (up to) the first 2000 rows.
  std::vector<std::vector<double>> pilot(
      rows.begin(), rows.begin() + std::min<std::size_t>(size, 2000));
  labeler.calibrate(pilot, means, inv_stds);

  Rng noise_rng(derive_seed(seed, 1));
  Dataset data(schema);
  for (const auto& row : rows) {
    data.add_row(row, labeler.label(row, noise_rng));
  }
  return data;
}

// ---------------------------------------------------------------------------
// Per-dataset blueprints (Table 1 schemas)
// ---------------------------------------------------------------------------

DatasetBlueprint adult_blueprint() {
  DatasetBlueprint bp;
  bp.numeric = {
      {"age", NumDist::kNormal, 38.6, 13.2},
      {"education_num", NumDist::kNormal, 10.1, 2.5},
      {"capital_gain", NumDist::kLogNormal, 2.0, 2.5},
      {"hours_per_week", NumDist::kNormal, 40.9, 12.0},
  };
  bp.categorical = {
      {"workclass",
       {"private", "self_emp", "government", "unemployed"},
       {0.70, 0.11, 0.13, 0.06}},
      {"education",
       {"hs_or_less", "some_college", "bachelors", "advanced"},
       {0.45, 0.25, 0.20, 0.10}},
      {"marital_status", {"married", "single", "divorced"}, {0.47, 0.33, 0.20}},
      {"occupation",
       generic_values("occ", 6),
       {0.2, 0.2, 0.18, 0.16, 0.14, 0.12}},
      {"relationship", {"husband", "wife", "own_child", "not_in_family"},
       {0.4, 0.05, 0.15, 0.4}},
      {"race", {"white", "black", "asian", "other"}, {0.85, 0.09, 0.03, 0.03}},
      {"sex", {"male", "female"}, {0.67, 0.33}},
      {"native_country", {"us", "latin_america", "asia", "europe"},
       {0.90, 0.05, 0.03, 0.02}},
  };
  bp.classes = {"<=50K", ">50K"};
  bp.class_weights = {0.75, 0.25};
  bp.structure_seed = 101;
  return bp;
}

DatasetBlueprint breast_cancer_blueprint() {
  DatasetBlueprint bp;
  // Paper's Table 1 lists 32 numeric features (WDBC's 30 + id-derived cols).
  static const char* kStems[] = {"radius", "texture", "perimeter", "area",
                                 "smoothness", "compactness", "concavity",
                                 "concave_points", "symmetry", "fractal_dim"};
  static const char* kSuffixes[] = {"_mean", "_se", "_worst"};
  std::size_t produced = 0;
  for (const char* suffix : kSuffixes) {
    for (const char* stem : kStems) {
      if (produced == 30) break;
      bp.numeric.push_back({std::string(stem) + suffix, NumDist::kLogNormal,
                            0.5, 0.6});
      ++produced;
    }
  }
  bp.numeric.push_back({"cell_count", NumDist::kNormal, 50.0, 12.0});
  bp.numeric.push_back({"slide_density", NumDist::kUniform, 0.0, 1.0});
  bp.classes = {"benign", "malignant"};
  bp.class_weights = {0.63, 0.37};
  bp.label_noise = 0.04;
  bp.structure_seed = 102;
  return bp;
}

DatasetBlueprint nursery_blueprint() {
  DatasetBlueprint bp;
  bp.categorical = {
      {"parents", {"usual", "pretentious", "great_pret"}, {}},
      {"has_nurs", generic_values("nurs", 5), {}},
      {"form", {"complete", "completed", "incomplete", "foster"}, {}},
      {"children", {"one", "two", "three", "more"}, {}},
      {"housing", {"convenient", "less_conv", "critical"}, {}},
      {"finance", {"convenient", "inconv"}, {}},
      {"social", {"nonprob", "slightly_prob", "problematic"}, {}},
      {"health", {"recommended", "priority", "not_recom"}, {}},
  };
  bp.classes = {"not_recom", "priority", "spec_prior", "very_recom"};
  bp.class_weights = {0.33, 0.33, 0.31, 0.03};
  bp.structure_seed = 103;
  return bp;
}

DatasetBlueprint wine_blueprint() {
  DatasetBlueprint bp;
  bp.numeric = {
      {"fixed_acidity", NumDist::kNormal, 6.85, 0.84},
      {"volatile_acidity", NumDist::kLogNormal, -1.3, 0.35},
      {"citric_acid", NumDist::kNormal, 0.33, 0.12},
      {"residual_sugar", NumDist::kLogNormal, 1.2, 0.9},
      {"chlorides", NumDist::kLogNormal, -3.1, 0.35},
      {"free_so2", NumDist::kNormal, 35.3, 17.0},
      {"total_so2", NumDist::kNormal, 138.4, 42.5},
      {"density", NumDist::kNormal, 0.994, 0.003},
      {"ph", NumDist::kNormal, 3.19, 0.15},
      {"sulphates", NumDist::kLogNormal, -0.75, 0.23},
      {"alcohol", NumDist::kNormal, 10.5, 1.23},
  };
  bp.classes = {"q3", "q4", "q5", "q6", "q7", "q8", "q9"};
  bp.class_weights = {0.004, 0.033, 0.297, 0.449, 0.180, 0.036, 0.001};
  bp.structure_seed = 104;
  return bp;
}

DatasetBlueprint mushroom_blueprint() {
  DatasetBlueprint bp;
  static const struct {
    const char* name;
    std::size_t cardinality;
  } kFeatures[] = {
      {"cap_shape", 6},       {"cap_surface", 4}, {"cap_color", 10},
      {"bruises", 2},         {"odor", 9},        {"gill_attachment", 2},
      {"gill_spacing", 2},    {"gill_size", 2},   {"gill_color", 12},
      {"stalk_shape", 2},     {"stalk_root", 5},  {"stalk_surface_above", 4},
      {"stalk_surface_below", 4}, {"stalk_color_above", 9},
      {"stalk_color_below", 9},   {"veil_color", 4},
      {"ring_number", 3},     {"ring_type", 5},   {"spore_print_color", 9},
      {"population", 6},      {"habitat", 7},
  };
  for (const auto& f : kFeatures) {
    bp.categorical.push_back({f.name, generic_values("v", f.cardinality), {}});
  }
  bp.classes = {"edible", "poisonous"};
  bp.class_weights = {0.52, 0.48};
  bp.label_noise = 0.02;  // mushroom is near-separable
  bp.structure_seed = 105;
  return bp;
}

DatasetBlueprint contraceptive_blueprint() {
  DatasetBlueprint bp;
  bp.numeric = {
      {"wife_age", NumDist::kNormal, 32.5, 8.2},
      {"num_children", NumDist::kLogNormal, 1.0, 0.65},
  };
  bp.categorical = {
      {"wife_education", generic_values("edu", 4), {0.2, 0.25, 0.25, 0.3}},
      {"husband_education", generic_values("edu", 4), {0.1, 0.2, 0.3, 0.4}},
      {"wife_religion", {"non_islam", "islam"}, {0.15, 0.85}},
      {"wife_working", {"yes", "no"}, {0.25, 0.75}},
      {"husband_occupation", generic_values("occ", 4), {}},
      {"living_standard", generic_values("std", 4), {0.1, 0.2, 0.3, 0.4}},
      {"media_exposure", {"good", "not_good"}, {0.92, 0.08}},
  };
  bp.classes = {"no_use", "long_term", "short_term"};
  bp.class_weights = {0.43, 0.23, 0.34};
  bp.label_noise = 0.12;  // contraceptive is a noisy dataset
  bp.structure_seed = 106;
  return bp;
}

DatasetBlueprint car_blueprint() {
  DatasetBlueprint bp;
  bp.categorical = {
      {"buying", {"vhigh", "high", "med", "low"}, {}},
      {"maint", {"vhigh", "high", "med", "low"}, {}},
      {"doors", {"two", "three", "four", "more"}, {}},
      {"persons", {"two", "four", "more"}, {}},
      {"lug_boot", {"small", "med", "big"}, {}},
      {"safety", {"low", "med", "high"}, {}},
  };
  bp.classes = {"unacc", "acc", "good", "vgood"};
  bp.class_weights = {0.70, 0.22, 0.04, 0.04};
  bp.structure_seed = 107;
  return bp;
}

DatasetBlueprint splice_blueprint() {
  DatasetBlueprint bp;
  for (std::size_t pos = 0; pos < 60; ++pos) {
    bp.categorical.push_back({"base_" + std::to_string(pos),
                              {"A", "C", "G", "T"},
                              {}});
  }
  bp.classes = {"EI", "IE", "N"};
  bp.class_weights = {0.24, 0.24, 0.52};
  bp.structure_seed = 108;
  return bp;
}

const DatasetBlueprint& blueprint_for(UciDataset id) {
  static const DatasetBlueprint kAdult = adult_blueprint();
  static const DatasetBlueprint kBreast = breast_cancer_blueprint();
  static const DatasetBlueprint kNursery = nursery_blueprint();
  static const DatasetBlueprint kWine = wine_blueprint();
  static const DatasetBlueprint kMushroom = mushroom_blueprint();
  static const DatasetBlueprint kContraceptive = contraceptive_blueprint();
  static const DatasetBlueprint kCar = car_blueprint();
  static const DatasetBlueprint kSplice = splice_blueprint();
  switch (id) {
    case UciDataset::kAdult: return kAdult;
    case UciDataset::kBreastCancer: return kBreast;
    case UciDataset::kNursery: return kNursery;
    case UciDataset::kWineQuality: return kWine;
    case UciDataset::kMushroom: return kMushroom;
    case UciDataset::kContraceptive: return kContraceptive;
    case UciDataset::kCar: return kCar;
    case UciDataset::kSplice: return kSplice;
  }
  throw Error("unknown dataset id");
}

}  // namespace

const std::vector<DatasetInfo>& all_datasets() {
  static const std::vector<DatasetInfo> kInfos = {
      {UciDataset::kAdult, "Adult", 45222, 4, 8, 2},
      {UciDataset::kBreastCancer, "Breast Cancer", 569, 32, 0, 2},
      {UciDataset::kNursery, "Nursery", 12958, 0, 8, 4},
      {UciDataset::kWineQuality, "Wine Quality (white)", 4898, 11, 0, 7},
      {UciDataset::kMushroom, "Mushroom", 8124, 0, 21, 2},
      {UciDataset::kContraceptive, "Contraceptive", 1473, 2, 7, 3},
      {UciDataset::kCar, "Car", 1728, 0, 6, 4},
      {UciDataset::kSplice, "Splice", 3190, 0, 60, 3},
  };
  return kInfos;
}

const DatasetInfo& dataset_info(UciDataset id) {
  for (const auto& info : all_datasets()) {
    if (info.id == id) return info;
  }
  throw Error("unknown dataset id");
}

UciDataset dataset_by_name(const std::string& name) {
  // Case-insensitive so declarative specs (core/spec.hpp) can say "adult"
  // without knowing the display casing of the Table 1 names.
  const auto lower = [](const std::string& s) {
    std::string out = s;
    for (char& c : out) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    return out;
  };
  const std::string wanted = lower(name);
  for (const auto& info : all_datasets()) {
    if (lower(info.name) == wanted) return info.id;
  }
  throw Error("unknown dataset name: " + name);
}

Dataset make_dataset(UciDataset id, std::size_t size, std::uint64_t seed) {
  return make_dataset(id, size, seed, GeneratorOverrides{});
}

Dataset make_dataset(UciDataset id, std::size_t size, std::uint64_t seed,
                     const GeneratorOverrides& overrides) {
  const auto& info = dataset_info(id);
  const std::size_t n = size == 0 ? info.paper_size : size;
  Dataset data = generate(with_overrides(blueprint_for(id), overrides), n,
                          seed);
  // Invariants promised by Table 1.
  FROTE_CHECK(data.schema().num_numeric() == info.num_numeric);
  FROTE_CHECK(data.schema().num_categorical() == info.num_categorical);
  FROTE_CHECK(data.num_classes() == info.num_classes);
  return data;
}

Schema dataset_schema(UciDataset id) {
  const DatasetBlueprint& bp = blueprint_for(id);
  return Schema(schema_specs(bp), bp.classes);
}

std::vector<UciDataset> binary_datasets() {
  return {UciDataset::kBreastCancer, UciDataset::kMushroom, UciDataset::kAdult};
}

}  // namespace frote
