// Feature encoding for numeric models (logistic regression, online LR):
// standardizes numeric columns and one-hot encodes categorical columns,
// matching the preprocessing the paper's scikit-learn pipeline applies.
// Tree models consume raw rows and do not use this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "frote/data/dataset.hpp"

namespace frote {

/// Fitted one-hot + standardization transform.
class Encoder {
 public:
  Encoder() = default;

  /// Fit scaling parameters and the one-hot layout on `data`.
  static Encoder fit(const Dataset& data);

  /// Width of the encoded vector.
  std::size_t encoded_width() const { return width_; }

  /// Encode one raw row.
  std::vector<double> transform(std::span<const double> row) const;

  /// Encode one raw row into a reusable buffer (resized to encoded_width());
  /// the allocation-free form the batch predict paths use.
  void transform_into(std::span<const double> row,
                      std::vector<double>& out) const;

  /// Encode the whole dataset (row-major, size() x encoded_width()).
  std::vector<double> transform_all(const Dataset& data) const;

  /// Sparse CSR encoding of the whole dataset. One-hot blocks make the dense
  /// encoding mostly zeros — each row has at most one entry per input column
  /// (exactly one per numeric column, one per in-cardinality categorical),
  /// with entry indices strictly ascending within a row. Iterating the
  /// sparse entries in order visits the same nonzero terms, in the same
  /// order, as a dense scan that skips zeros.
  struct SparseRows {
    std::vector<std::uint32_t> index;      // encoded column of each entry
    std::vector<double> value;
    std::vector<std::size_t> row_begin;    // size n + 1; entries of row i are
                                           // [row_begin[i], row_begin[i+1])
  };
  SparseRows sparse_transform_all(const Dataset& data) const;

 private:
  struct ColumnPlan {
    bool categorical = false;
    std::size_t offset = 0;       // first output slot for this column
    std::size_t cardinality = 0;  // categorical only
    double mean = 0.0;            // numeric only
    double inv_std = 1.0;         // numeric only (1 when std ~ 0)
  };
  std::vector<ColumnPlan> plans_;
  std::size_t width_ = 0;
};

}  // namespace frote
