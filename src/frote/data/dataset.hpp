// Tabular dataset container: a shared schema plus row-major feature values
// and integer class labels. All FROTE operations (coverage, relabel/drop,
// augmentation) work on this type.
//
// Storage (docs/DESIGN.md §8): the feature values live in a ChunkStore —
// by default one contiguous in-memory table (the historical layout), or,
// with StorageOptions{chunk_rows > 0}, fixed-size immutable chunks
// (optionally mmap-backed) plus a mutable tail. Rows are row-major within
// a chunk, so row(i) always returns one contiguous span either way; only
// whole-table raw_values() requires the unchunked layout (check
// values_contiguous() first). Labels and row ids stay flat columns — the
// table is struct-of-arrays, and only the wide column is chunked.
//
// Staged appends (the session workspace's data plane, docs/DESIGN.md §5):
// `stage_rows()` appends a batch that is immediately visible to every reader
// (size(), row(), label()) but remembers the pre-stage size, so the caller
// can either `commit()` — keep the rows, O(1) — or `rollback()` — truncate
// back, O(1) amortised. This is what lets the FROTE loop train and evaluate
// a candidate D′ = D̂ ∪ S without materialising a second dataset copy.
// Chunks seal only at commit points (never mid-stage), so rollback stays a
// pure tail truncation under every storage geometry.
//
// Change tracking for incremental consumers (kNN indexes, fitted distances,
// prediction caches):
//   - uid():     process-unique identity; fresh per construction and per
//                copy, preserved across moves.
//   - version(): bumped by every mutation (including stage/rollback).
//   - append_epoch(): bumped only by mutations that edit or remove existing
//                rows (set_label, remove_rows, set_storage — the last
//                because re-chunking moves rows to new addresses). While it
//                is stable, any prefix of the dataset a consumer already
//                absorbed is still byte-identical, so caches may extend
//                instead of refit.
//   - row_id(i): stable per-row identity; assigned on append, kept across
//                remove_rows/commit, never reused within a dataset.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "frote/data/chunks.hpp"
#include "frote/data/schema.hpp"

namespace frote {

/// Immutable-schema, mutable-rows dataset. Rows are stored contiguously
/// within chunks; see StorageOptions for the geometry knobs.
class Dataset {
 public:
  Dataset() : uid_(next_uid()) {}
  explicit Dataset(std::shared_ptr<const Schema> schema,
                   const StorageOptions& storage = {});

  /// Copies get a fresh uid (they are a new logical dataset) and count
  /// toward copy_count() — tests/test_engine_perf.cpp uses the counter to
  /// prove the session loop never clones D̂ per iteration. Sealed chunks
  /// are immutable, so a copy shares them and deep-copies only the tail.
  Dataset(const Dataset& other);
  Dataset& operator=(const Dataset& other);
  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;

  const Schema& schema() const {
    FROTE_CHECK(schema_ != nullptr);
    return *schema_;
  }
  std::shared_ptr<const Schema> schema_ptr() const { return schema_; }

  std::size_t size() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }
  std::size_t num_features() const { return schema().num_features(); }
  std::size_t num_classes() const { return schema().num_classes(); }

  /// Feature vector of row i as a span over contiguous storage (each row
  /// is contiguous within its chunk under every geometry).
  std::span<const double> row(std::size_t i) const {
    FROTE_CHECK_MSG(i < size(), "row " << i << " out of " << size());
    return {values_.row(i), schema().num_features()};
  }

  /// Row i's values without the bounds check — for hot loops that already
  /// hold a validated index and work under any storage geometry.
  const double* row_ptr(std::size_t i) const { return values_.row(i); }

  /// True while the whole table is one contiguous block (always the case
  /// for chunk_rows == 0; for chunked storage, only before the first seal).
  bool values_contiguous() const { return values_.contiguous(); }

  /// Raw row-major feature storage (size() * num_features()); hot loops
  /// that already hold a validated index can skip row()'s per-call bounds
  /// check. Requires values_contiguous() — chunked callers iterate rows.
  std::span<const double> raw_values() const {
    return values_.contiguous_values();
  }

  int label(std::size_t i) const {
    FROTE_CHECK_MSG(i < size(), "row " << i << " out of " << size());
    return labels_[i];
  }
  /// Raw label storage, index-aligned with row indices (labels are a flat
  /// column under every storage geometry).
  std::span<const int> raw_labels() const {
    return {labels_.data(), labels_.size()};
  }

  void set_label(std::size_t i, int label);

  /// Append a row (validated against the schema).
  void add_row(const std::vector<double>& features, int label);
  void add_row(std::span<const double> features, int label);

  /// Append every row of `other` (schemas must match).
  void append(const Dataset& other);

  /// Pre-size the row storage for `rows` total rows, so a session that
  /// grows toward a known budget q·|D| appends without reallocation.
  /// Chunked stores cap the reservation at the tail's working set.
  void reserve_rows(std::size_t rows);

  // -- Storage geometry ------------------------------------------------------

  const StorageOptions& storage() const { return values_.options(); }
  /// Chunks currently backing the values column (sealed + live tail).
  std::size_t chunk_count() const { return values_.chunk_count(); }
  /// Sealed chunks that are mmap-backed (stats/test hook).
  std::size_t mapped_chunk_count() const {
    return values_.mapped_chunk_count();
  }
  /// Re-chunk the values column under a new geometry (one O(n·d) pass).
  /// Existing rows keep their ids and order; version/append_epoch bump
  /// because rows move to new addresses, so pointer-holding consumers
  /// (workspace generators, packed kNN rows) refit rather than dangle.
  /// Not allowed while a staged batch is open.
  void set_storage(const StorageOptions& storage);

  // -- Staged appends --------------------------------------------------------

  /// Append every row of `other` as a *staged* tail: visible immediately,
  /// revocable via rollback(). Returns the index of the first staged row.
  /// Nested staging is not supported (FROTE_CHECK).
  std::size_t stage_rows(const Dataset& other);
  /// Keep the staged tail. O(1) + sealing of any completed chunks; bumps
  /// version().
  void commit();
  /// Discard the staged tail, truncating back to the pre-stage size.
  void rollback();
  bool has_staged() const { return staged_from_ != kNoStage; }
  /// First staged row index; size() when nothing is staged.
  std::size_t staged_begin() const {
    return has_staged() ? staged_from_ : size();
  }

  // -- Change tracking -------------------------------------------------------

  std::uint64_t uid() const { return uid_; }
  std::uint64_t version() const { return version_; }
  std::uint64_t append_epoch() const { return append_epoch_; }
  std::uint64_t row_id(std::size_t i) const {
    FROTE_CHECK_MSG(i < size(), "row " << i << " out of " << size());
    return row_ids_[i];
  }
  /// Next id an appended row would receive (ids are never reused).
  std::uint64_t next_row_id() const { return next_row_id_; }

  /// Checkpoint-restore hook (core/checkpoint.hpp): reinstate the change
  /// tracking of a serialised dataset — per-row ids, the id counter, and
  /// the version/append_epoch counters — so consumers resume from the same
  /// logical state. `row_ids` must have one id per current row and
  /// `next_row_id` must exceed them all. The uid stays fresh: it is a
  /// process-unique identity and must never collide with a live dataset.
  void restore_tracking(std::vector<std::uint64_t> row_ids,
                        std::uint64_t next_row_id, std::uint64_t version,
                        std::uint64_t append_epoch);
  /// Process-wide count of Dataset copy constructions/assignments.
  static std::uint64_t copy_count() {
    return copies_.load(std::memory_order_relaxed);
  }

  /// New dataset containing the rows at `indices` (order preserved). The
  /// subset inherits this dataset's storage geometry.
  Dataset subset(const std::vector<std::size_t>& indices) const;

  /// Remove the rows at `indices` (need not be sorted; duplicates ignored).
  void remove_rows(std::vector<std::size_t> indices);

  /// Per-class row counts.
  std::vector<std::size_t> class_counts() const;

  /// Mean / sample-std / min / max of a numeric feature column.
  struct ColumnStats {
    double mean = 0.0, stddev = 0.0, min = 0.0, max = 0.0;
  };
  ColumnStats numeric_column_stats(std::size_t feature) const;

  /// Distinct category code counts of a categorical feature column.
  std::vector<std::size_t> category_counts(std::size_t feature) const;

 private:
  static constexpr std::size_t kNoStage = static_cast<std::size_t>(-1);
  static std::uint64_t next_uid();
  static std::atomic<std::uint64_t> copies_;

  void bump(bool rewrites_existing_rows) {
    ++version_;
    if (rewrites_existing_rows) ++append_epoch_;
  }
  void push_row_unchecked(const double* features, int label);
  /// Seal completed chunks — only outside a staged batch, so rollback
  /// stays a pure tail truncation.
  void maybe_seal() {
    if (!has_staged()) values_.seal();
  }

  std::shared_ptr<const Schema> schema_;
  ChunkStore values_;  // row-major within chunks, size() * num_features()
  std::vector<int> labels_;
  std::vector<std::uint64_t> row_ids_;
  std::uint64_t uid_ = 0;
  std::uint64_t version_ = 0;
  std::uint64_t append_epoch_ = 0;
  std::uint64_t next_row_id_ = 0;
  std::size_t staged_from_ = kNoStage;
};

}  // namespace frote
