// Tabular dataset container: a shared schema plus row-major feature values
// and integer class labels. All FROTE operations (coverage, relabel/drop,
// augmentation) work on this type.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "frote/data/schema.hpp"

namespace frote {

/// Immutable-schema, mutable-rows dataset. Rows are stored contiguously.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::shared_ptr<const Schema> schema);

  const Schema& schema() const {
    FROTE_CHECK(schema_ != nullptr);
    return *schema_;
  }
  std::shared_ptr<const Schema> schema_ptr() const { return schema_; }

  std::size_t size() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }
  std::size_t num_features() const { return schema().num_features(); }
  std::size_t num_classes() const { return schema().num_classes(); }

  /// Feature vector of row i as a span over contiguous storage.
  std::span<const double> row(std::size_t i) const {
    FROTE_CHECK_MSG(i < size(), "row " << i << " out of " << size());
    const std::size_t w = schema().num_features();
    return {values_.data() + i * w, w};
  }

  int label(std::size_t i) const {
    FROTE_CHECK_MSG(i < size(), "row " << i << " out of " << size());
    return labels_[i];
  }

  void set_label(std::size_t i, int label);

  /// Append a row (validated against the schema).
  void add_row(const std::vector<double>& features, int label);
  void add_row(std::span<const double> features, int label);

  /// Append every row of `other` (schemas must match).
  void append(const Dataset& other);

  /// New dataset containing the rows at `indices` (order preserved).
  Dataset subset(const std::vector<std::size_t>& indices) const;

  /// Remove the rows at `indices` (need not be sorted; duplicates ignored).
  void remove_rows(std::vector<std::size_t> indices);

  /// Per-class row counts.
  std::vector<std::size_t> class_counts() const;

  /// Mean / sample-std / min / max of a numeric feature column.
  struct ColumnStats {
    double mean = 0.0, stddev = 0.0, min = 0.0, max = 0.0;
  };
  ColumnStats numeric_column_stats(std::size_t feature) const;

  /// Distinct category code counts of a categorical feature column.
  std::vector<std::size_t> category_counts(std::size_t feature) const;

 private:
  std::shared_ptr<const Schema> schema_;
  std::vector<double> values_;  // row-major, size() * num_features()
  std::vector<int> labels_;
};

}  // namespace frote
