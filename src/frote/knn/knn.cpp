#include "frote/knn/knn.hpp"

#include <algorithm>
#include <cmath>

namespace frote {

namespace {

std::vector<std::size_t> all_indices(const Dataset& data) {
  std::vector<std::size_t> idx(data.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  return idx;
}

/// Keep a bounded max-heap of the k best neighbours (worst on top).
struct NeighborCmp {
  bool operator()(const Neighbor& a, const Neighbor& b) const {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.index < b.index;  // deterministic tie-break
  }
};

void heap_offer(std::vector<Neighbor>& heap, std::size_t k, Neighbor cand) {
  if (heap.size() < k) {
    heap.push_back(cand);
    std::push_heap(heap.begin(), heap.end(), NeighborCmp{});
  } else if (NeighborCmp{}(cand, heap.front())) {
    std::pop_heap(heap.begin(), heap.end(), NeighborCmp{});
    heap.back() = cand;
    std::push_heap(heap.begin(), heap.end(), NeighborCmp{});
  }
}

std::vector<Neighbor> heap_finish(std::vector<Neighbor> heap) {
  std::sort_heap(heap.begin(), heap.end(), NeighborCmp{});
  return heap;
}

}  // namespace

BruteKnn::BruteKnn(const Dataset& data, MixedDistance distance,
                   std::vector<std::size_t> indices)
    : distance_(std::move(distance)) {
  row_ids_ = indices.empty() ? all_indices(data) : std::move(indices);
  rows_.reserve(row_ids_.size());
  for (std::size_t id : row_ids_) {
    auto row = data.row(id);
    rows_.emplace_back(row.begin(), row.end());
  }
}

std::vector<Neighbor> BruteKnn::query(std::span<const double> query,
                                      std::size_t k) const {
  std::vector<Neighbor> heap;
  heap.reserve(k + 1);
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    heap_offer(heap, k, {i, std::sqrt(distance_.squared(rows_[i], query))});
  }
  return heap_finish(std::move(heap));
}

BallTreeKnn::BallTreeKnn(const Dataset& data, MixedDistance distance,
                         std::vector<std::size_t> indices,
                         std::size_t leaf_size)
    : distance_(std::move(distance)), leaf_size_(std::max<std::size_t>(1, leaf_size)) {
  row_ids_ = indices.empty() ? all_indices(data) : std::move(indices);
  rows_.reserve(row_ids_.size());
  for (std::size_t id : row_ids_) {
    auto row = data.row(id);
    rows_.emplace_back(row.begin(), row.end());
  }
  order_.resize(rows_.size());
  for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
  if (!rows_.empty()) build(0, rows_.size());
}

int BallTreeKnn::build(std::size_t begin, std::size_t end) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back({});
  Node node;
  node.begin = begin;
  node.end = end;
  // Pivot: first point of the range; radius covers the whole range.
  node.center = order_[begin];
  node.radius = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    node.radius =
        std::max(node.radius, (distance_)(rows_[node.center], rows_[order_[i]]));
  }
  if (end - begin > leaf_size_) {
    // Furthest-point split: pick the point furthest from the pivot as the
    // left pole, and the point furthest from the left pole as the right pole.
    std::size_t left_pole = order_[begin];
    double best = -1.0;
    for (std::size_t i = begin; i < end; ++i) {
      const double d = distance_(rows_[node.center], rows_[order_[i]]);
      if (d > best) {
        best = d;
        left_pole = order_[i];
      }
    }
    std::size_t right_pole = left_pole;
    best = -1.0;
    for (std::size_t i = begin; i < end; ++i) {
      const double d = distance_(rows_[left_pole], rows_[order_[i]]);
      if (d > best) {
        best = d;
        right_pole = order_[i];
      }
    }
    // Partition by nearer pole (ties to the left) around the median.
    std::vector<std::pair<double, std::size_t>> keyed;
    keyed.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      const double dl = distance_(rows_[left_pole], rows_[order_[i]]);
      const double dr = distance_(rows_[right_pole], rows_[order_[i]]);
      keyed.emplace_back(dl - dr, order_[i]);
    }
    std::sort(keyed.begin(), keyed.end());
    for (std::size_t i = 0; i < keyed.size(); ++i) {
      order_[begin + i] = keyed[i].second;
    }
    const std::size_t mid = begin + (end - begin) / 2;
    if (mid > begin && mid < end) {
      node.left = build(begin, mid);
      node.right = build(mid, end);
    }
  }
  nodes_[static_cast<std::size_t>(node_id)] = node;
  return node_id;
}

void BallTreeKnn::search(int node_id, std::span<const double> query,
                         std::size_t k, std::vector<Neighbor>& heap) const {
  const Node& node = nodes_[static_cast<std::size_t>(node_id)];
  const double center_dist = distance_(rows_[node.center], query);
  // Prune: nothing in this ball can beat the current worst.
  if (heap.size() == k && center_dist - node.radius > heap.front().distance) {
    return;
  }
  if (node.left < 0) {
    for (std::size_t i = node.begin; i < node.end; ++i) {
      const std::size_t row = order_[i];
      heap_offer(heap, k, {row, distance_(rows_[row], query)});
    }
    return;
  }
  // Visit the child whose pivot is nearer first for better pruning.
  const Node& l = nodes_[static_cast<std::size_t>(node.left)];
  const Node& r = nodes_[static_cast<std::size_t>(node.right)];
  const double dl = distance_(rows_[l.center], query);
  const double dr = distance_(rows_[r.center], query);
  if (dl <= dr) {
    search(node.left, query, k, heap);
    search(node.right, query, k, heap);
  } else {
    search(node.right, query, k, heap);
    search(node.left, query, k, heap);
  }
}

std::vector<Neighbor> BallTreeKnn::query(std::span<const double> query,
                                         std::size_t k) const {
  std::vector<Neighbor> heap;
  heap.reserve(k + 1);
  if (!rows_.empty() && k > 0) search(0, query, k, heap);
  return heap_finish(std::move(heap));
}

}  // namespace frote
