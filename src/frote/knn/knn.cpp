#include "frote/knn/knn.hpp"

#include <algorithm>
#include <cmath>

#include "frote/knn/sharded.hpp"
#include "frote/util/parallel.hpp"

namespace frote {

namespace {

/// Rows per chunk of a brute-force scan. Large enough that the common small
/// indexes (rule base populations, n ≤ a few thousand) stay single-chunk.
constexpr std::size_t kScanGrain = 1024;

std::vector<std::size_t> all_indices(const Dataset& data) {
  std::vector<std::size_t> idx(data.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  return idx;
}

bool is_identity(const std::vector<std::size_t>& ids) {
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] != i) return false;
  }
  return true;
}

}  // namespace

namespace detail {

// PackedRows: the shared storage format of both engines. Columns are
// permuted so the numeric features come first — pre-multiplied by 1/σ, so
// the scan's numeric term is a plain squared difference — followed by the
// raw categorical codes, whose mismatches add a constant squared penalty.
// The squared-distance kernel is therefore two tight branch-free-per-column
// loops over contiguous memory. Both engines pack identically, so they agree
// on every distance bit.

void PackedRows::init_layout(const MixedDistance& distance) {
  dim_ = distance.num_columns();
  penalty_sq_ = distance.categorical_penalty() * distance.categorical_penalty();
  slot_of_.resize(dim_);
  scale_.assign(dim_, 1.0);
  std::size_t slot = 0;
  for (std::size_t f = 0; f < dim_; ++f) {
    if (!distance.column_categorical(f)) {
      slot_of_[f] = slot++;
      scale_[f] = distance.column_inv_std(f);
    }
  }
  numeric_count_ = slot;
  for (std::size_t f = 0; f < dim_; ++f) {
    if (distance.column_categorical(f)) slot_of_[f] = slot++;
  }
}

PackedRows::PackedRows(const Dataset& data, const MixedDistance& distance,
                       const std::vector<std::size_t>& row_ids) {
  init_layout(distance);
  data_.resize(row_ids.size() * dim_);
  for (std::size_t i = 0; i < row_ids.size(); ++i) {
    pack_row(data.row(row_ids[i]), data_.data() + i * dim_);
  }
}

void PackedRows::pack_row(std::span<const double> raw, double* out) const {
  for (std::size_t f = 0; f < dim_; ++f) {
    out[slot_of_[f]] = raw[f] * scale_[f];
  }
}

void PackedRows::pack_query(std::span<const double> raw,
                            std::vector<double>& out) const {
  out.resize(dim_);
  pack_row(raw, out.data());
}

void PackedRows::append(const Dataset& data,
                        std::span<const std::size_t> row_ids) {
  const std::size_t old = data_.size();
  data_.resize(old + row_ids.size() * dim_);
  for (std::size_t i = 0; i < row_ids.size(); ++i) {
    pack_row(data.row(row_ids[i]), data_.data() + old + i * dim_);
  }
}

void PackedRows::repack(const Dataset& data, const MixedDistance& distance,
                        const std::vector<std::size_t>& row_ids) {
  init_layout(distance);
  data_.resize(row_ids.size() * dim_);
  for (std::size_t i = 0; i < row_ids.size(); ++i) {
    pack_row(data.row(row_ids[i]), data_.data() + i * dim_);
  }
}

bool PackedRows::scales_match(const MixedDistance& distance) const {
  if (distance.num_columns() != dim_) return false;
  const double penalty_sq =
      distance.categorical_penalty() * distance.categorical_penalty();
  if (penalty_sq != penalty_sq_) return false;
  std::size_t slot = 0;
  for (std::size_t f = 0; f < dim_; ++f) {
    if (distance.column_categorical(f)) continue;
    // Numeric columns must occupy the same slots with the same 1/σ.
    if (slot_of_[f] != slot || scale_[f] != distance.column_inv_std(f)) {
      return false;
    }
    ++slot;
  }
  return slot == numeric_count_;
}

void PackedRows::permute(const std::vector<std::size_t>& order) {
  std::vector<double> next(data_.size());
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    std::copy(data_.begin() + static_cast<std::ptrdiff_t>(order[pos] * dim_),
              data_.begin() +
                  static_cast<std::ptrdiff_t>((order[pos] + 1) * dim_),
              next.begin() + static_cast<std::ptrdiff_t>(pos * dim_));
  }
  data_ = std::move(next);
}

double PackedRows::squared(const double* a, const double* b) const {
  double acc = 0.0;
  std::size_t f = 0;
  for (; f < numeric_count_; ++f) {
    const double diff = a[f] - b[f];
    acc += diff * diff;
  }
  // Count mismatches with an integer accumulator (no data-dependent branch,
  // no FP dependency chain — real categorical codes mispredict a per-column
  // branch badly), then replay exactly the per-mismatch adds the per-column
  // loop would have performed: the same penalty added the same number of
  // times in the same sequence yields the same bits.
  int mismatches = 0;
  for (; f < dim_; ++f) {
    mismatches += a[f] != b[f] ? 1 : 0;
  }
  for (int m = 0; m < mismatches; ++m) acc += penalty_sq_;
  return acc;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// BruteKnn

BruteKnn::BruteKnn(const Dataset& data, MixedDistance distance,
                   std::vector<std::size_t> indices, int threads)
    : row_ids_(indices.empty() ? all_indices(data) : std::move(indices)),
      packed_(data, distance, row_ids_),
      threads_(threads),
      covers_prefix_(is_identity(row_ids_)) {}

void BruteKnn::query_squared(std::span<const double> query, std::size_t k,
                             std::vector<Neighbor>& out) const {
  out.clear();
  if (k == 0 || row_ids_.empty()) return;
  static thread_local std::vector<double> packed_query;
  packed_.pack_query(query, packed_query);
  const double* q = packed_query.data();
  // Per-chunk bounded heaps over fixed chunk boundaries, merged in ascending
  // chunk order. The k-best set under the (distance, index) total order is
  // independent of the chunking, so every thread count agrees exactly.
  std::vector<Neighbor> heap = parallel_reduce(
      row_ids_.size(), kScanGrain, threads_, std::vector<Neighbor>{},
      [&](std::size_t begin, std::size_t end) {
        std::vector<Neighbor> local;
        local.reserve(k + 1);
        for (std::size_t i = begin; i < end; ++i) {
          detail::heap_offer(local, k, {i, packed_.squared(packed_.row(i), q)});
        }
        return local;
      },
      [k](std::vector<Neighbor>& acc, std::vector<Neighbor>&& part) {
        if (acc.empty()) {
          acc = std::move(part);
          return;
        }
        for (const Neighbor& cand : part) detail::heap_offer(acc, k, cand);
      });
  out = detail::heap_sorted(std::move(heap));
}

bool BruteKnn::try_append(const Dataset& data, const MixedDistance& distance) {
  if (!covers_prefix_ || data.size() < row_ids_.size()) return false;
  const std::size_t old = row_ids_.size();
  for (std::size_t i = old; i < data.size(); ++i) row_ids_.push_back(i);
  if (packed_.scales_match(distance)) {
    packed_.append(data, std::span<const std::size_t>(row_ids_).subspan(old));
  } else {
    // The refit distance rescaled at least one column: one O(n·d) repack —
    // still no engine re-selection and no per-row reallocation churn.
    packed_.repack(data, distance, row_ids_);
  }
  return true;
}

bool BruteKnn::try_refit(const Dataset& data, const MixedDistance& distance) {
  if (!packed_.scales_match(distance)) {
    packed_.repack(data, distance, row_ids_);
  }
  return true;
}

// ---------------------------------------------------------------------------
// BallTreeKnn

BallTreeKnn::BallTreeKnn(const Dataset& data, MixedDistance distance,
                         std::vector<std::size_t> indices,
                         std::size_t leaf_size)
    : row_ids_(indices.empty() ? all_indices(data) : std::move(indices)),
      packed_(data, distance, row_ids_),
      leaf_size_(std::max<std::size_t>(1, leaf_size)),
      covers_prefix_(is_identity(row_ids_)) {
  build_tree(data);
}

void BallTreeKnn::build_tree(const Dataset& data) {
  (void)data;  // packed_ already holds every row in row-set order
  nodes_.clear();
  order_.resize(row_ids_.size());
  for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
  tree_rows_ = row_ids_.size();
  if (row_ids_.empty()) return;
  keyed_.reserve(row_ids_.size());
  build(0, row_ids_.size());
  keyed_ = {};  // build-only scratch
  // Reorder storage so every leaf (and every subtree) is one contiguous
  // block: leaf scans walk linear memory. nodes_[].center holds storage
  // *positions* from here on; order_ maps positions back to row-set indices.
  packed_.permute(order_);
  std::vector<std::size_t> pos_of(order_.size());
  for (std::size_t pos = 0; pos < order_.size(); ++pos) {
    pos_of[order_[pos]] = pos;
  }
  for (auto& node : nodes_) node.center = pos_of[node.center];
}

int BallTreeKnn::build(std::size_t begin, std::size_t end) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back({});
  Node node;
  node.begin = begin;
  node.end = end;
  // Pivot: first point of the range (the parent swaps its split pole here,
  // so the ball is centred on a pole, which keeps radii tight). One pass
  // computes the covering radius and the furthest point — the left pole of
  // this node's own split — together.
  node.center = order_[begin];
  node.radius = 0.0;
  std::size_t left_pole_at = begin;
  const double* center_row = packed_.row(node.center);
  for (std::size_t i = begin; i < end; ++i) {
    const double d =
        std::sqrt(packed_.squared(center_row, packed_.row(order_[i])));
    if (d > node.radius) {
      node.radius = d;
      left_pole_at = i;
    }
  }
  if (end - begin > leaf_size_) {
    // Furthest-point split: the left pole is the point furthest from the
    // pivot; the right pole is the point furthest from the left pole. The
    // left-pole distances double as the first half of the partition key.
    const std::size_t left_pole = order_[left_pole_at];
    const double* left_row = packed_.row(left_pole);
    keyed_.clear();
    std::size_t right_pole = left_pole;
    double best = -1.0;
    for (std::size_t i = begin; i < end; ++i) {
      const double dl =
          std::sqrt(packed_.squared(left_row, packed_.row(order_[i])));
      if (dl > best) {
        best = dl;
        right_pole = order_[i];
      }
      keyed_.emplace_back(dl, order_[i]);
    }
    const double* right_row = packed_.row(right_pole);
    // Partition by nearer pole (key = d_left − d_right, ties by row index)
    // around the median.
    for (std::size_t i = begin; i < end; ++i) {
      keyed_[i - begin].first -=
          std::sqrt(packed_.squared(right_row, packed_.row(order_[i])));
    }
    const std::size_t mid = begin + (end - begin) / 2;
    std::nth_element(keyed_.begin(),
                     keyed_.begin() + static_cast<std::ptrdiff_t>(mid - begin),
                     keyed_.end());
    for (std::size_t i = 0; i < keyed_.size(); ++i) {
      order_[begin + i] = keyed_[i].second;
    }
    // Centre each child ball on its pole: the left pole has the most
    // negative key (its own d_left is 0), so it already sits in the left
    // half; the right pole symmetrically in the right half. Swapping them to
    // the front of their ranges makes them the children's pivots.
    const auto swap_to_front = [&](std::size_t lo, std::size_t hi,
                                   std::size_t pole) {
      for (std::size_t i = lo; i < hi; ++i) {
        if (order_[i] == pole) {
          std::swap(order_[lo], order_[i]);
          return;
        }
      }
    };
    swap_to_front(begin, mid, left_pole);
    swap_to_front(mid, end, right_pole);
    if (mid > begin && mid < end) {
      node.left = build(begin, mid);
      node.right = build(mid, end);
    }
  }
  nodes_[static_cast<std::size_t>(node_id)] = node;
  return node_id;
}

void BallTreeKnn::refresh_radii() {
  for (auto& node : nodes_) {
    const double* center_row = packed_.row(node.center);
    double radius = 0.0;
    for (std::size_t pos = node.begin; pos < node.end; ++pos) {
      radius = std::max(
          radius, std::sqrt(packed_.squared(center_row, packed_.row(pos))));
    }
    node.radius = radius;
  }
}

bool BallTreeKnn::try_append(const Dataset& data,
                             const MixedDistance& distance) {
  if (!covers_prefix_ || data.size() < row_ids_.size()) return false;
  const std::size_t old = row_ids_.size();
  for (std::size_t i = old; i < data.size(); ++i) {
    row_ids_.push_back(i);
    order_.push_back(i);  // tail rows sit at their own storage positions
  }
  const std::size_t tail = row_ids_.size() - tree_rows_;
  if (tail > std::max(leaf_size_, tree_rows_ / 8)) {
    // Deterministic rebuild point: fold the tail into a fresh tree (which
    // subsumes any rescale handling). Repack into row-set order first —
    // build_tree assumes storage position i holds row-set index i.
    packed_.repack(data, distance, row_ids_);
    build_tree(data);
    return true;
  }
  if (!packed_.scales_match(distance)) {
    repack_storage(data, distance, old);
  }
  packed_.append(data, std::span<const std::size_t>(row_ids_).subspan(old));
  return true;
}

void BallTreeKnn::repack_storage(const Dataset& data,
                                 const MixedDistance& distance,
                                 std::size_t count) {
  // Repack the first `count` stored rows (storage position p holds row
  // order_[p]) and refresh the node radii so pruning stays exact under the
  // new scales. try_append passes the pre-append row count — the appended
  // tail is packed right after under the new scales — while try_refit
  // repacks everything.
  std::vector<std::size_t> storage_rows(count);
  for (std::size_t pos = 0; pos < count; ++pos) {
    storage_rows[pos] = row_ids_[order_[pos]];
  }
  packed_.repack(data, distance, storage_rows);
  refresh_radii();
}

bool BallTreeKnn::try_refit(const Dataset& data,
                            const MixedDistance& distance) {
  if (!packed_.scales_match(distance)) {
    repack_storage(data, distance, order_.size());
  }
  return true;
}

void BallTreeKnn::search(int node_id, const double* query, std::size_t k,
                         std::vector<Neighbor>& heap, double center_sq) const {
  const Node& node = nodes_[static_cast<std::size_t>(node_id)];
  // Prune: nothing in this ball can beat the current worst. Comparing the
  // squared gap against the squared worst distance avoids a sqrt of the
  // heap front on every visit.
  if (heap.size() == k) {
    const double gap = std::sqrt(center_sq) - node.radius;
    if (gap > 0.0 && gap * gap > heap.front().distance) return;
  }
  if (node.left < 0) {
    for (std::size_t i = node.begin; i < node.end; ++i) {
      detail::heap_offer(heap, k,
                         {order_[i], packed_.squared(packed_.row(i), query)});
    }
    return;
  }
  // Visit the child whose pivot is nearer first for better pruning; the
  // children's center distances are computed here once and handed down.
  const Node& l = nodes_[static_cast<std::size_t>(node.left)];
  const Node& r = nodes_[static_cast<std::size_t>(node.right)];
  const double dl = packed_.squared(packed_.row(l.center), query);
  const double dr = packed_.squared(packed_.row(r.center), query);
  if (dl <= dr) {
    search(node.left, query, k, heap, dl);
    search(node.right, query, k, heap, dr);
  } else {
    search(node.right, query, k, heap, dr);
    search(node.left, query, k, heap, dl);
  }
}

void BallTreeKnn::query_squared(std::span<const double> query, std::size_t k,
                                std::vector<Neighbor>& out) const {
  out.clear();
  if (k == 0 || row_ids_.empty()) return;
  static thread_local std::vector<double> packed_query;
  packed_.pack_query(query, packed_query);
  const double* q = packed_query.data();
  std::vector<Neighbor> heap;
  heap.reserve(k + 1);
  if (!nodes_.empty()) {
    search(0, q, k, heap,
           packed_.squared(packed_.row(nodes_[0].center), q));
  }
  // Tail buffer of appended rows: a flat scan after the tree. The k-best
  // set under the (distance, index) total order is independent of the visit
  // order, so the result matches a fresh build bit for bit.
  for (std::size_t pos = tree_rows_; pos < order_.size(); ++pos) {
    detail::heap_offer(heap, k,
                       {order_[pos], packed_.squared(packed_.row(pos), q)});
  }
  out = detail::heap_sorted(std::move(heap));
}

// ---------------------------------------------------------------------------
// Engine selection

std::unique_ptr<KnnIndex> make_single_knn_index(const Dataset& data,
                                                MixedDistance distance,
                                                std::vector<std::size_t> indices,
                                                const KnnIndexConfig& config) {
  const std::size_t n = indices.empty() ? data.size() : indices.size();
  if (n < config.brute_crossover) {
    return std::make_unique<BruteKnn>(data, std::move(distance),
                                      std::move(indices), config.threads);
  }
  return std::make_unique<BallTreeKnn>(data, std::move(distance),
                                       std::move(indices), config.leaf_size);
}

std::unique_ptr<KnnIndex> make_knn_index(const Dataset& data,
                                         MixedDistance distance,
                                         std::vector<std::size_t> indices,
                                         const KnnIndexConfig& config) {
  const std::size_t n = indices.empty() ? data.size() : indices.size();
  // The sharding decision is a pure function of (n, config) — never the
  // thread count — so the engine (and therefore every distance computation)
  // is stable across FROTE_NUM_THREADS.
  const bool shard = config.shards >= 2 ||
                     (config.shards == 0 && n >= config.shard_min_rows);
  if (shard) {
    return std::make_unique<ShardedKnnIndex>(data, std::move(distance),
                                             std::move(indices), config);
  }
  return make_single_knn_index(data, std::move(distance), std::move(indices),
                               config);
}

}  // namespace frote
