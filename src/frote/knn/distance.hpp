// Mixed numeric/categorical distance for nearest-neighbour search, following
// SMOTE-NC (Chawla et al. 2002): numeric coordinates contribute squared
// differences after standardization; each categorical mismatch contributes
// the square of the *median of the numeric features' standard deviations*.
// This is a proper metric (it embeds categories as orthogonal simplex
// corners), so a ball tree over it is valid.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "frote/data/dataset.hpp"
#include "frote/util/stats.hpp"

namespace frote {

/// Per-column Welford accumulators for a dataset prefix — the incremental
/// form of MixedDistance::fit. Because Welford updates are sequential,
/// absorbing rows [0, n0) and later [n0, n) yields bit-identical moments to
/// one pass over [0, n): a distance refit from extended moments equals a
/// full refit on the grown dataset (docs/DESIGN.md §5).
class ColumnMoments {
 public:
  ColumnMoments() = default;
  explicit ColumnMoments(const Schema& schema);

  /// Absorb rows [absorbed_rows(), data.size()) of `data`. The prefix
  /// already absorbed must be unchanged (the caller tracks the dataset's
  /// append_epoch for that guarantee).
  void absorb(const Dataset& data);
  std::size_t absorbed_rows() const { return rows_; }
  const RunningStats& column(std::size_t f) const { return columns_[f]; }
  std::size_t num_columns() const { return columns_.size(); }

 private:
  std::vector<RunningStats> columns_;  // numeric columns only carry moments
  std::vector<bool> categorical_;
  std::size_t rows_ = 0;
};

/// Fitted SMOTE-NC distance over a dataset's schema and scale.
class MixedDistance {
 public:
  MixedDistance() = default;

  /// Fit per-feature scales on `data`. For a pure-categorical dataset the
  /// mismatch cost is 1 (there is no numeric σ to take the median of).
  static MixedDistance fit(const Dataset& data);

  /// Refit from incrementally maintained moments; bit-identical to
  /// fit(data) when `moments` absorbed exactly data's rows in order.
  static MixedDistance from_moments(const Schema& schema,
                                    const ColumnMoments& moments);

  /// Squared distance between two raw rows.
  double squared(std::span<const double> a, std::span<const double> b) const;

  /// Distance (sqrt of squared).
  double operator()(std::span<const double> a,
                    std::span<const double> b) const;

  double categorical_penalty() const { return nominal_diff_; }

  /// Per-column layout accessors, so index structures can pre-scale rows
  /// into a packed layout and run the scan without per-column branches.
  std::size_t num_columns() const { return columns_.size(); }
  bool column_categorical(std::size_t f) const {
    return columns_[f].categorical;
  }
  double column_inv_std(std::size_t f) const { return columns_[f].inv_std; }

  /// True when the two fits scale every column bit-identically — appendable
  /// kNN indexes use this to decide between a pure tail append and a repack.
  bool same_scales(const MixedDistance& other) const;

 private:
  struct Column {
    bool categorical = false;
    double inv_std = 1.0;  // numeric: 1/σ (1 when σ ≈ 0)
  };
  std::vector<Column> columns_;
  double nominal_diff_ = 1.0;  // per-mismatch distance contribution
};

}  // namespace frote
