// ShardedKnnIndex — the scale tier of make_knn_index (docs/DESIGN.md §8).
//
// Past KnnIndexConfig::shard_min_rows a single ball tree stops paying: the
// build is one serial O(n log n) pass, and every query walks one pointer-
// heavy tree from one thread. Sharding splits the indexed row set into
// contiguous ascending ranges of ~shard_target_rows rows — shard s covers
// positions [s·n/S, (s+1)·n/S) — and backs each range with its own
// single-engine index (make_single_knn_index: brute scan or ball tree by
// shard size). Builds and queries fan out across shards on
// util/parallel.hpp (grain 1), so both scale with cores.
//
// Determinism is inherited, not re-proved: each shard computes exactly the
// distances a single index would (same PackedRows packing, same squared
// kernel), and the merge folds per-shard top-k lists in ascending shard
// order under the (squared distance, row index) total order — the same
// discipline as parallel_reduce. Because shards are contiguous ascending
// ranges, a shard-local index remaps to the global position by adding the
// shard offset, which preserves the index tie-break. The k-best set under a
// total order is independent of how the candidates were partitioned, so
// sharded results are bit-identical to one index over the union, at every
// thread count and shard count (tests/test_sharded_knn.cpp). Merging
// happens on *squared* distances (query_squared) — taking square roots
// per shard first could collapse distinct squared values and break the
// tie-break equivalence.
//
// Appends (the FROTE loop growing D̂) go to a flat BruteKnn tail over the
// appended rows, queried after the shards; when the tail outgrows a
// threshold that is a pure function of the config — never the thread
// count — the whole index is deterministically re-sharded. A refit that
// rescales the distance re-fits every shard in place (KnnIndex::try_refit)
// instead of rebuilding the shard structure.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "frote/knn/knn.hpp"

namespace frote {

/// A deterministic sharded kNN index: contiguous shards, parallel fan-out,
/// ascending-order top-k merge. Results are bit-identical to a single
/// index over the same rows.
class ShardedKnnIndex : public KnnIndex {
 public:
  /// Index the rows of `data` at `indices` (or all rows when empty),
  /// partitioned into plan_shards(n, config) shards. `config.threads`
  /// bounds the build/query fan-out (0 ⇒ FROTE_NUM_THREADS) and never
  /// affects results.
  ShardedKnnIndex(const Dataset& data, MixedDistance distance,
                  std::vector<std::size_t> indices = {},
                  const KnnIndexConfig& config = {});

  void query_squared(std::span<const double> query, std::size_t k,
                     std::vector<Neighbor>& out) const override;
  std::size_t size() const override { return total_rows_; }
  std::size_t dataset_index(std::size_t i) const override {
    return row_ids_.empty() ? i : row_ids_[i];
  }
  /// Appended rows join a flat tail index scanned after the shards; a
  /// rescaled distance re-fits each shard in place. When the tail outgrows
  /// tail_rebuild_threshold() the whole index re-shards — at a point that
  /// is a pure function of the row counts and config, so rebuilds happen at
  /// the same step for every thread count.
  bool try_append(const Dataset& data, const MixedDistance& distance) override;
  /// Same-rows refit: re-fit every shard (and the tail) under `distance`.
  bool try_refit(const Dataset& data, const MixedDistance& distance) override;

  /// Number of shards over the base (pre-append) row set; test hook.
  std::size_t shard_count() const { return shards_.size(); }
  /// Appended rows currently served by the flat tail index; test hook.
  std::size_t tail_rows() const { return total_rows_ - base_rows_; }

  /// The shard-count policy: config.shards >= 2 forces that count
  /// (clamped to n); otherwise one shard per ~shard_target_rows rows,
  /// minimum 2. A pure function of (n, config) — never the thread count.
  static std::size_t plan_shards(std::size_t n, const KnnIndexConfig& config);

 private:
  struct Shard {
    std::size_t begin = 0;  // first covered row-set position
    std::unique_ptr<KnnIndex> index;
  };

  /// (Re)build the shards over the current row set; resets the tail.
  void build(const Dataset& data);
  /// Rebuild the tail index over rows [base_rows_, total_rows_).
  void rebuild_tail(const Dataset& data);
  std::size_t tail_rebuild_threshold() const;

  std::vector<std::size_t> row_ids_;  // empty = identity mapping
  MixedDistance distance_;            // current fit, for rebuilds
  KnnIndexConfig config_;
  std::vector<Shard> shards_;
  std::unique_ptr<KnnIndex> tail_;  // appended rows; null when none
  std::size_t base_rows_ = 0;       // rows covered by shards_
  std::size_t total_rows_ = 0;      // base + tail
  bool covers_prefix_ = false;      // identity over a dataset prefix
};

}  // namespace frote
