#include "frote/knn/distance.hpp"

#include <algorithm>
#include <cmath>

#include "frote/util/error.hpp"

namespace frote {

MixedDistance MixedDistance::fit(const Dataset& data) {
  FROTE_CHECK(!data.empty());
  MixedDistance d;
  std::vector<double> numeric_stds;
  for (std::size_t f = 0; f < data.num_features(); ++f) {
    Column col;
    if (data.schema().feature(f).is_categorical()) {
      col.categorical = true;
    } else {
      const auto stats = data.numeric_column_stats(f);
      numeric_stds.push_back(stats.stddev);
      col.inv_std = stats.stddev > 1e-12 ? 1.0 / stats.stddev : 1.0;
    }
    d.columns_.push_back(col);
  }
  if (!numeric_stds.empty()) {
    // SMOTE-NC: nominal mismatch cost = median of numeric feature σ's,
    // measured in the *standardized* space — since we divide numeric diffs
    // by σ, the standardized mismatch cost is median(σ)·(1/σ_f) per feature;
    // the original SMOTE-NC applies it in raw space. We keep raw-space
    // semantics: numeric diffs are raw/σ (unit variance), and the mismatch
    // cost is the median σ divided by the same median σ = 1. To stay closer
    // to the SMOTE-NC paper's behaviour (mismatch comparable to one σ of a
    // typical numeric feature), use 1.0 in standardized space.
    d.nominal_diff_ = 1.0;
  } else {
    d.nominal_diff_ = 1.0;
  }
  return d;
}

double MixedDistance::squared(std::span<const double> a,
                              std::span<const double> b) const {
  FROTE_CHECK(a.size() == columns_.size() && b.size() == columns_.size());
  double acc = 0.0;
  for (std::size_t f = 0; f < columns_.size(); ++f) {
    const auto& col = columns_[f];
    if (col.categorical) {
      if (a[f] != b[f]) acc += nominal_diff_ * nominal_diff_;
    } else {
      const double diff = (a[f] - b[f]) * col.inv_std;
      acc += diff * diff;
    }
  }
  return acc;
}

double MixedDistance::operator()(std::span<const double> a,
                                 std::span<const double> b) const {
  return std::sqrt(squared(a, b));
}

}  // namespace frote
