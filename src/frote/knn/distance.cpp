#include "frote/knn/distance.hpp"

#include <algorithm>
#include <cmath>

#include "frote/util/error.hpp"

namespace frote {

ColumnMoments::ColumnMoments(const Schema& schema)
    : columns_(schema.num_features()),
      categorical_(schema.num_features(), false) {
  for (std::size_t f = 0; f < schema.num_features(); ++f) {
    categorical_[f] = schema.feature(f).is_categorical();
  }
}

void ColumnMoments::absorb(const Dataset& data) {
  FROTE_CHECK(columns_.size() == data.num_features());
  const std::size_t n = data.size();
  FROTE_CHECK_MSG(rows_ <= n, "moments absorbed more rows than data holds");
  // Column-by-column over the new tail, in row order: the per-column Welford
  // sequence matches a from-scratch pass over [0, n) exactly.
  for (std::size_t f = 0; f < columns_.size(); ++f) {
    if (categorical_[f]) continue;
    RunningStats& s = columns_[f];
    for (std::size_t i = rows_; i < n; ++i) s.add(data.row(i)[f]);
  }
  rows_ = n;
}

MixedDistance MixedDistance::fit(const Dataset& data) {
  FROTE_CHECK(!data.empty());
  MixedDistance d;
  std::vector<double> numeric_stds;
  for (std::size_t f = 0; f < data.num_features(); ++f) {
    Column col;
    if (data.schema().feature(f).is_categorical()) {
      col.categorical = true;
    } else {
      const auto stats = data.numeric_column_stats(f);
      numeric_stds.push_back(stats.stddev);
      col.inv_std = stats.stddev > 1e-12 ? 1.0 / stats.stddev : 1.0;
    }
    d.columns_.push_back(col);
  }
  if (!numeric_stds.empty()) {
    // SMOTE-NC: nominal mismatch cost = median of numeric feature σ's,
    // measured in the *standardized* space — since we divide numeric diffs
    // by σ, the standardized mismatch cost is median(σ)·(1/σ_f) per feature;
    // the original SMOTE-NC applies it in raw space. We keep raw-space
    // semantics: numeric diffs are raw/σ (unit variance), and the mismatch
    // cost is the median σ divided by the same median σ = 1. To stay closer
    // to the SMOTE-NC paper's behaviour (mismatch comparable to one σ of a
    // typical numeric feature), use 1.0 in standardized space.
    d.nominal_diff_ = 1.0;
  } else {
    d.nominal_diff_ = 1.0;
  }
  return d;
}

MixedDistance MixedDistance::from_moments(const Schema& schema,
                                          const ColumnMoments& moments) {
  FROTE_CHECK(moments.absorbed_rows() > 0);
  FROTE_CHECK(moments.num_columns() == schema.num_features());
  MixedDistance d;
  for (std::size_t f = 0; f < schema.num_features(); ++f) {
    Column col;
    if (schema.feature(f).is_categorical()) {
      col.categorical = true;
    } else {
      // Same expression as fit(): RunningStats::stddev over the same add
      // sequence, so the scale doubles match bit for bit.
      const double stddev = moments.column(f).stddev();
      col.inv_std = stddev > 1e-12 ? 1.0 / stddev : 1.0;
    }
    d.columns_.push_back(col);
  }
  d.nominal_diff_ = 1.0;
  return d;
}

bool MixedDistance::same_scales(const MixedDistance& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  if (nominal_diff_ != other.nominal_diff_) return false;
  for (std::size_t f = 0; f < columns_.size(); ++f) {
    if (columns_[f].categorical != other.columns_[f].categorical ||
        columns_[f].inv_std != other.columns_[f].inv_std) {
      return false;
    }
  }
  return true;
}

double MixedDistance::squared(std::span<const double> a,
                              std::span<const double> b) const {
  FROTE_CHECK(a.size() == columns_.size() && b.size() == columns_.size());
  double acc = 0.0;
  for (std::size_t f = 0; f < columns_.size(); ++f) {
    const auto& col = columns_[f];
    if (col.categorical) {
      if (a[f] != b[f]) acc += nominal_diff_ * nominal_diff_;
    } else {
      const double diff = (a[f] - b[f]) * col.inv_std;
      acc += diff * diff;
    }
  }
  return acc;
}

double MixedDistance::operator()(std::span<const double> a,
                                 std::span<const double> b) const {
  return std::sqrt(squared(a, b));
}

}  // namespace frote
