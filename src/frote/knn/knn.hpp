// k-nearest-neighbour search over a fixed set of rows with the SMOTE-NC
// mixed distance. Three engines with identical results:
//  - BruteKnn: flat scan over contiguous row storage, O(n) per query,
//    chunk-parallel for large row sets;
//  - BallTreeKnn: metric ball tree (the paper uses sklearn's ball_tree);
//  - ShardedKnnIndex (knn/sharded.hpp): contiguous shards of the row set,
//    each backed by one of the two engines above, with a deterministic
//    merged top-k.
// All engines compare squared distances internally and break distance ties
// by row index, so they agree exactly. The virtual surface is
// query_squared() — the k best by *squared* distance — and the public
// query() applies the square root once on top; composing engines
// (ShardedKnnIndex's merge) work on the squared values so no intermediate
// rounding can reorder a tie. make_knn_index() picks the engine by row
// count: below the measured crossover the flat scan wins, above it the
// ball tree, and past the sharding threshold the row set is partitioned
// so builds and queries fan out on util/parallel.hpp.
//
// Appendable indexes (docs/DESIGN.md §5): an index built over *all* rows of
// a dataset can absorb appended rows via try_append() instead of being
// rebuilt from scratch. BruteKnn packs just the new rows (or repacks in one
// pass when the refit distance changed scale); BallTreeKnn keeps appended
// rows in a flat tail buffer that every query scans after the tree, and
// folds the tail into the tree at a deterministic size threshold. Subset
// indexes (the sharded engine's building blocks) support try_refit()
// instead: same rows, re-fitted under a rescaled distance. Query results
// after any append/refit sequence are bit-identical to a fresh build over
// the same rows and distance.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "frote/data/dataset.hpp"
#include "frote/knn/distance.hpp"

namespace frote {

struct Neighbor {
  std::size_t index = 0;  // index into the indexed row set
  double distance = 0.0;
};

namespace detail {
/// Contiguous pre-scaled row storage shared by both engines: numeric columns
/// first (pre-multiplied by 1/σ so the scan is a plain squared difference),
/// then raw categorical codes (mismatch adds a constant squared penalty).
class PackedRows {
 public:
  PackedRows(const Dataset& data, const MixedDistance& distance,
             const std::vector<std::size_t>& row_ids);

  std::size_t dim() const { return dim_; }
  std::size_t rows() const { return dim_ == 0 ? 0 : data_.size() / dim_; }
  const double* row(std::size_t pos) const { return data_.data() + pos * dim_; }
  void pack_query(std::span<const double> raw, std::vector<double>& out) const;
  /// Append the dataset rows at `row_ids` to the packed storage. The scales
  /// fitted at construction keep applying — callers must check
  /// scales_match() first (append under a rescaled distance needs repack()).
  void append(const Dataset& data, std::span<const std::size_t> row_ids);
  /// Re-pack every row from `data` under a (possibly rescaled) `distance`;
  /// storage position p re-packs dataset row `row_ids[p]`. One O(n·d) pass.
  void repack(const Dataset& data, const MixedDistance& distance,
              const std::vector<std::size_t>& row_ids);
  /// True when `distance` scales every column exactly as this packing did.
  bool scales_match(const MixedDistance& distance) const;
  /// Reorder storage so position p holds the row previously at order[p].
  void permute(const std::vector<std::size_t>& order);
  double squared(const double* a, const double* b) const;

 private:
  void init_layout(const MixedDistance& distance);
  void pack_row(std::span<const double> raw, double* out) const;

  std::vector<double> data_;  // row-major, n x dim_
  std::size_t dim_ = 0;
  std::size_t numeric_count_ = 0;
  double penalty_sq_ = 1.0;
  std::vector<std::size_t> slot_of_;  // feature -> packed slot
  std::vector<double> scale_;         // feature -> 1/σ (1 for categorical)
};

/// Total order every engine ranks by: distance, then row index — the
/// deterministic tie-break that makes brute/tree/sharded agree exactly.
/// Works identically on squared distances (sqrt is monotone).
struct NeighborCmp {
  bool operator()(const Neighbor& a, const Neighbor& b) const {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.index < b.index;  // deterministic tie-break
  }
};

/// Keep a bounded max-heap of the k best neighbours (worst on top).
inline void heap_offer(std::vector<Neighbor>& heap, std::size_t k,
                       Neighbor cand) {
  if (heap.size() < k) {
    heap.push_back(cand);
    std::push_heap(heap.begin(), heap.end(), NeighborCmp{});
  } else if (NeighborCmp{}(cand, heap.front())) {
    std::pop_heap(heap.begin(), heap.end(), NeighborCmp{});
    heap.back() = cand;
    std::push_heap(heap.begin(), heap.end(), NeighborCmp{});
  }
}

/// Heap -> ascending (distance, index) order; distances stay squared.
inline std::vector<Neighbor> heap_sorted(std::vector<Neighbor> heap) {
  std::sort_heap(heap.begin(), heap.end(), NeighborCmp{});
  return heap;
}
}  // namespace detail

/// Common interface for kNN engines.
class KnnIndex {
 public:
  virtual ~KnnIndex() = default;
  /// The k nearest indexed rows to `query`, ascending by distance. Ties are
  /// broken by row index so every engine agrees exactly. Implemented on
  /// query_squared(): the square root is applied exactly once per reported
  /// neighbour, after all merging, so composed engines cannot re-round.
  std::vector<Neighbor> query(std::span<const double> query,
                              std::size_t k) const {
    std::vector<Neighbor> out;
    query_squared(query, k, out);
    for (auto& neighbor : out) {
      neighbor.distance = std::sqrt(neighbor.distance);
    }
    return out;
  }
  /// The k nearest indexed rows with *squared* distances, ascending by
  /// (squared distance, index). The composition primitive: a merge of
  /// per-shard results under this order is bit-identical to a single
  /// index over the union.
  virtual void query_squared(std::span<const double> query, std::size_t k,
                             std::vector<Neighbor>& out) const = 0;
  virtual std::size_t size() const = 0;
  /// Row-set index -> original dataset row index.
  virtual std::size_t dataset_index(std::size_t i) const = 0;
  /// Absorb the rows of `data` beyond size() into the index, refit under
  /// `distance` (which may have new scales). Only supported by indexes that
  /// cover a full-dataset prefix [0, size()); returns false when the caller
  /// should rebuild instead. After a successful append, queries are
  /// bit-identical to a fresh build over data with `distance`.
  virtual bool try_append(const Dataset& data, const MixedDistance& distance) {
    (void)data;
    (void)distance;
    return false;
  }
  /// Re-fit the index in place under `distance` over the *same* indexed
  /// rows of `data` (which may have been rescaled by a refit). Unlike
  /// try_append this works for subset indexes — it is how a sharded index
  /// refreshes its shards without rebuilding them. Returns false when the
  /// engine cannot refit in place.
  virtual bool try_refit(const Dataset& data, const MixedDistance& distance) {
    (void)data;
    (void)distance;
    return false;
  }
};

/// Exhaustive scan over contiguous rows.
class BruteKnn : public KnnIndex {
 public:
  /// Index the rows of `data` at `indices` (or all rows when empty).
  /// `threads` chunks the distance scan of large row sets;
  /// 0 ⇒ FROTE_NUM_THREADS. Results are identical for every thread count.
  BruteKnn(const Dataset& data, MixedDistance distance,
           std::vector<std::size_t> indices = {}, int threads = 0);

  void query_squared(std::span<const double> query, std::size_t k,
                     std::vector<Neighbor>& out) const override;
  std::size_t size() const override { return row_ids_.size(); }
  std::size_t dataset_index(std::size_t i) const override {
    return row_ids_[i];
  }
  bool try_append(const Dataset& data, const MixedDistance& distance) override;
  bool try_refit(const Dataset& data, const MixedDistance& distance) override;

 private:
  std::vector<std::size_t> row_ids_;
  detail::PackedRows packed_;
  int threads_ = 0;
  bool covers_prefix_ = false;  // row_ids_ == [0, size())
};

/// Metric ball tree (furthest-point split).
class BallTreeKnn : public KnnIndex {
 public:
  /// Leaf size balances per-node pruning against the (cheap, contiguous)
  /// leaf scans; the default is tuned on bench_micro's BM_KnnBallTree.
  static constexpr std::size_t kDefaultLeafSize = 32;

  BallTreeKnn(const Dataset& data, MixedDistance distance,
              std::vector<std::size_t> indices = {},
              std::size_t leaf_size = kDefaultLeafSize);

  void query_squared(std::span<const double> query, std::size_t k,
                     std::vector<Neighbor>& out) const override;
  std::size_t size() const override { return row_ids_.size(); }
  std::size_t dataset_index(std::size_t i) const override {
    return row_ids_[i];
  }
  /// Appended rows live in a flat tail buffer scanned after the tree; when
  /// the tail outgrows max(leaf_size, tree_rows/8) — a pure function of the
  /// row counts, so rebuild points are deterministic — the whole index is
  /// rebuilt. A rescaled distance triggers a one-pass repack plus an exact
  /// per-node radius refresh (the tree topology is kept; only the bounds
  /// must be valid for pruning).
  bool try_append(const Dataset& data, const MixedDistance& distance) override;
  /// Same-rows refit: repack under the new scales + refresh the radii.
  bool try_refit(const Dataset& data, const MixedDistance& distance) override;
  /// Rows covered by tree nodes (excludes the tail buffer); test hook.
  std::size_t tree_rows() const { return tree_rows_; }

 private:
  struct Node {
    std::size_t begin = 0, end = 0;  // range into order_ (= storage range)
    /// Row-set index of the pivot during build; remapped to its storage
    /// position once the leaf-contiguous permutation is applied.
    std::size_t center = 0;
    double radius = 0.0;
    int left = -1, right = -1;       // children node ids; -1 for leaf
  };

  void build_tree(const Dataset& data);
  int build(std::size_t begin, std::size_t end);
  /// Recompute every node's covering radius under the current packing — one
  /// exact pass per node, ~3x cheaper than a full rebuild.
  void refresh_radii();
  /// Repack the first `count` stored rows under `distance` (storage
  /// position p holds row order_[p]) and refresh the radii. The shared core
  /// of try_append's rescale path and try_refit.
  void repack_storage(const Dataset& data, const MixedDistance& distance,
                      std::size_t count);
  /// `center_sq` is the squared distance from the packed query to this
  /// node's pivot, computed by the parent so no node measures its own
  /// center twice.
  void search(int node, const double* query, std::size_t k,
              std::vector<Neighbor>& heap, double center_sq) const;

  std::vector<std::size_t> row_ids_;
  detail::PackedRows packed_;
  std::vector<std::size_t> order_;  // storage position -> row-set index
  std::vector<Node> nodes_;
  std::size_t leaf_size_;
  std::size_t tree_rows_ = 0;  // storage positions [0, tree_rows_) are treed
  bool covers_prefix_ = false;
  // Build-time scratch (partition keys); reused across nodes, dead after
  // construction.
  std::vector<std::pair<double, std::size_t>> keyed_;
};

/// Engine-selection knobs for make_knn_index.
struct KnnIndexConfig {
  std::size_t leaf_size = BallTreeKnn::kDefaultLeafSize;
  /// Below this many indexed rows the flat scan beats the ball tree per
  /// query *and* skips the build cost entirely. Measured crossover on
  /// bench_micro's adult workload: the tree's query first wins at n = 4000
  /// (BM_KnnBallTree/4000 vs BM_KnnBrute/4000) and still loses at n = 1000
  /// (see BENCH_micro.json, including BM_BallTreeBuild for the build cost).
  std::size_t brute_crossover = 4000;
  int threads = 0;  // for chunked scans / shard fan-out; 0 ⇒ FROTE_NUM_THREADS
  /// Row sets at or above this size are sharded (ShardedKnnIndex): the set
  /// splits into contiguous ranges of ~shard_target_rows rows, each backed
  /// by its own single engine, built and queried on util/parallel.hpp.
  /// The policy is a pure function of (n, config) — never the thread
  /// count — so engine choice is stable across FROTE_NUM_THREADS.
  std::size_t shard_min_rows = 32768;
  std::size_t shard_target_rows = 16384;
  /// Explicit shard count: 0 = auto (the policy above), 1 = never shard,
  /// >= 2 = force exactly this many shards.
  std::size_t shards = 0;
};

/// The library's default index: brute force below the measured crossover,
/// ball tree above it, sharded past shard_min_rows. All engines return
/// identical neighbours.
std::unique_ptr<KnnIndex> make_knn_index(const Dataset& data,
                                         MixedDistance distance,
                                         std::vector<std::size_t> indices = {},
                                         const KnnIndexConfig& config = {});

/// make_knn_index without the sharding tier — the per-shard building block.
std::unique_ptr<KnnIndex> make_single_knn_index(
    const Dataset& data, MixedDistance distance,
    std::vector<std::size_t> indices = {}, const KnnIndexConfig& config = {});

}  // namespace frote
