// k-nearest-neighbour search over a fixed set of rows with the SMOTE-NC
// mixed distance. Two engines with identical results:
//  - BruteKnn: O(n) per query;
//  - BallTreeKnn: metric ball tree (the paper uses sklearn's ball_tree).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "frote/data/dataset.hpp"
#include "frote/knn/distance.hpp"

namespace frote {

struct Neighbor {
  std::size_t index = 0;  // index into the indexed row set
  double distance = 0.0;
};

/// Common interface for kNN engines.
class KnnIndex {
 public:
  virtual ~KnnIndex() = default;
  /// The k nearest indexed rows to `query`, ascending by distance. Ties are
  /// broken by row index so both engines agree exactly.
  virtual std::vector<Neighbor> query(std::span<const double> query,
                                      std::size_t k) const = 0;
  virtual std::size_t size() const = 0;
};

/// Exhaustive scan.
class BruteKnn : public KnnIndex {
 public:
  /// Index the rows of `data` at `indices` (or all rows when empty).
  BruteKnn(const Dataset& data, MixedDistance distance,
           std::vector<std::size_t> indices = {});

  std::vector<Neighbor> query(std::span<const double> query,
                              std::size_t k) const override;
  std::size_t size() const override { return rows_.size(); }

  /// Row-set index -> original dataset row index.
  std::size_t dataset_index(std::size_t i) const { return row_ids_[i]; }

 private:
  std::vector<std::vector<double>> rows_;
  std::vector<std::size_t> row_ids_;
  MixedDistance distance_;
};

/// Metric ball tree (furthest-point split).
class BallTreeKnn : public KnnIndex {
 public:
  BallTreeKnn(const Dataset& data, MixedDistance distance,
              std::vector<std::size_t> indices = {}, std::size_t leaf_size = 16);

  std::vector<Neighbor> query(std::span<const double> query,
                              std::size_t k) const override;
  std::size_t size() const override { return rows_.size(); }
  std::size_t dataset_index(std::size_t i) const { return row_ids_[i]; }

 private:
  struct Node {
    std::size_t begin = 0, end = 0;  // range into order_
    std::size_t center = 0;          // index into rows_ of the pivot row
    double radius = 0.0;
    int left = -1, right = -1;       // children node ids; -1 for leaf
  };

  int build(std::size_t begin, std::size_t end);
  void search(int node, std::span<const double> query, std::size_t k,
              std::vector<Neighbor>& heap) const;

  std::vector<std::vector<double>> rows_;
  std::vector<std::size_t> row_ids_;
  std::vector<std::size_t> order_;  // permutation of row-set indices
  std::vector<Node> nodes_;
  MixedDistance distance_;
  std::size_t leaf_size_;
};

}  // namespace frote
