#include "frote/knn/sharded.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "frote/util/parallel.hpp"

namespace frote {

namespace {

bool is_identity(const std::vector<std::size_t>& ids) {
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] != i) return false;
  }
  return true;
}

}  // namespace

std::size_t ShardedKnnIndex::plan_shards(std::size_t n,
                                         const KnnIndexConfig& config) {
  const std::size_t target = std::max<std::size_t>(1, config.shard_target_rows);
  const std::size_t wanted = config.shards >= 2
                                 ? config.shards
                                 : std::max<std::size_t>(2, (n + target - 1) / target);
  // Never more shards than rows: every shard must be non-empty (an empty
  // explicit index list would mean "all rows" to the sub-engines).
  return std::max<std::size_t>(1, std::min(wanted, std::max<std::size_t>(1, n)));
}

ShardedKnnIndex::ShardedKnnIndex(const Dataset& data, MixedDistance distance,
                                 std::vector<std::size_t> indices,
                                 const KnnIndexConfig& config)
    : distance_(std::move(distance)), config_(config) {
  // An identity row set is kept implicit (row_ids_ empty): at the scales
  // this engine targets the mapping array would cost 8 bytes/row for a
  // lookup the shard offsets already encode.
  std::size_t n = indices.empty() ? data.size() : indices.size();
  if (!indices.empty() && !is_identity(indices)) {
    row_ids_ = std::move(indices);
  }
  total_rows_ = n;
  covers_prefix_ = row_ids_.empty();
  build(data);
}

void ShardedKnnIndex::build(const Dataset& data) {
  const std::size_t n = total_rows_;
  base_rows_ = n;
  tail_.reset();
  const std::size_t count = plan_shards(n, config_);
  shards_.clear();
  shards_.resize(count);
  // Shard boundaries depend only on (n, count); each shard builds its own
  // sub-index independently, so build order (= thread schedule) cannot
  // affect any result bit.
  parallel_for(count, 1, config_.threads, [&](std::size_t begin, std::size_t) {
    const std::size_t s = begin;
    const std::size_t lo = s * n / count;
    const std::size_t hi = (s + 1) * n / count;
    std::vector<std::size_t> ids;
    ids.reserve(hi - lo);
    for (std::size_t pos = lo; pos < hi; ++pos) {
      ids.push_back(dataset_index(pos));
    }
    shards_[s].begin = lo;
    shards_[s].index =
        make_single_knn_index(data, distance_, std::move(ids), config_);
  });
}

void ShardedKnnIndex::rebuild_tail(const Dataset& data) {
  if (total_rows_ == base_rows_) {
    tail_.reset();
    return;
  }
  // The tail is small (bounded by tail_rebuild_threshold), so a fresh flat
  // pack per append is cheaper than any incremental structure — and it
  // re-fits the current distance scales for free.
  std::vector<std::size_t> ids;
  ids.reserve(total_rows_ - base_rows_);
  for (std::size_t pos = base_rows_; pos < total_rows_; ++pos) {
    ids.push_back(dataset_index(pos));
  }
  tail_ = std::make_unique<BruteKnn>(data, distance_, std::move(ids),
                                     config_.threads);
}

std::size_t ShardedKnnIndex::tail_rebuild_threshold() const {
  // A pure function of the config (never of n or the thread count), so the
  // re-shard step is the same in every run. A quarter-shard of flat scan
  // per query is the agreed ceiling before re-sharding pays for itself.
  return std::max<std::size_t>(1024, config_.shard_target_rows / 4);
}

void ShardedKnnIndex::query_squared(std::span<const double> query,
                                    std::size_t k,
                                    std::vector<Neighbor>& out) const {
  out.clear();
  if (k == 0 || total_rows_ == 0) return;
  // Fan out: each shard reports its own k best by squared distance. The
  // per-shard lists land in per-shard slots, so the thread schedule is
  // invisible to the merge. Bind a reference to the caller's scratch before
  // the lambda: a thread_local name used inside a pool worker would resolve
  // to the worker's own instance.
  static thread_local std::vector<std::vector<Neighbor>> per_shard_tls;
  auto& per_shard = per_shard_tls;
  per_shard.resize(shards_.size());
  parallel_for(shards_.size(), 1, config_.threads,
               [&](std::size_t begin, std::size_t) {
                 shards_[begin].index->query_squared(query, k,
                                                     per_shard[begin]);
               });
  // Merge in ascending shard order under the (squared distance, global
  // index) total order. Contiguous ascending shards make the global
  // position a plain offset add, which preserves the index tie-break; the
  // k-best set under a total order does not depend on the partition, so
  // this equals a single index over the union bit for bit.
  std::vector<Neighbor> heap;
  heap.reserve(k + 1);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    for (const Neighbor& nb : per_shard[s]) {
      detail::heap_offer(heap, k, {shards_[s].begin + nb.index, nb.distance});
    }
  }
  if (tail_ != nullptr) {
    std::vector<Neighbor> tail_best;
    tail_->query_squared(query, k, tail_best);
    for (const Neighbor& nb : tail_best) {
      detail::heap_offer(heap, k, {base_rows_ + nb.index, nb.distance});
    }
  }
  out = detail::heap_sorted(std::move(heap));
}

bool ShardedKnnIndex::try_append(const Dataset& data,
                                 const MixedDistance& distance) {
  if (!covers_prefix_ || data.size() < total_rows_) return false;
  distance_ = distance;
  total_rows_ = data.size();
  if (total_rows_ - base_rows_ > tail_rebuild_threshold()) {
    // Deterministic re-shard: fold the tail back into the shard structure
    // (which re-fits the distance as a side effect).
    build(data);
    return true;
  }
  // Re-fit each shard in place in case the refit rescaled the distance
  // (scales_match short-circuits the common no-rescale case), then rebuild
  // the flat tail under the current scales.
  std::atomic<bool> ok{true};
  parallel_for(shards_.size(), 1, config_.threads,
               [&](std::size_t begin, std::size_t) {
                 if (!shards_[begin].index->try_refit(data, distance_)) {
                   ok.store(false, std::memory_order_relaxed);
                 }
               });
  if (!ok.load()) {
    build(data);
    return true;
  }
  rebuild_tail(data);
  return true;
}

bool ShardedKnnIndex::try_refit(const Dataset& data,
                                const MixedDistance& distance) {
  distance_ = distance;
  std::atomic<bool> ok{true};
  parallel_for(shards_.size(), 1, config_.threads,
               [&](std::size_t begin, std::size_t) {
                 if (!shards_[begin].index->try_refit(data, distance_)) {
                   ok.store(false, std::memory_order_relaxed);
                 }
               });
  if (!ok.load()) return false;
  rebuild_tail(data);
  return true;
}

}  // namespace frote
