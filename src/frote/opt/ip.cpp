#include "frote/opt/ip.hpp"

#include <algorithm>
#include <cmath>

#include "frote/util/error.hpp"

namespace frote {

namespace {

struct Node {
  std::vector<double> lo, hi;
};

/// Index of the most fractional binary variable, or SIZE_MAX if integral.
std::size_t most_fractional(const std::vector<double>& x,
                            const std::vector<std::size_t>& binary_vars,
                            double tol) {
  std::size_t best = static_cast<std::size_t>(-1);
  double best_frac = tol;
  for (std::size_t j : binary_vars) {
    const double f = std::abs(x[j] - std::round(x[j]));
    if (f > best_frac) {
      best_frac = f;
      best = j;
    }
  }
  return best;
}

}  // namespace

IpResult solve_binary_ip(const LpProblem& problem,
                         const std::vector<std::size_t>& binary_vars,
                         const IpConfig& config) {
  IpResult result;
  std::vector<Node> stack;
  stack.push_back({problem.lo, problem.hi});

  double incumbent = -kLpInfinity;
  bool first_node = true;

  while (!stack.empty() && result.nodes_explored < config.max_nodes) {
    Node node = std::move(stack.back());
    stack.pop_back();
    ++result.nodes_explored;

    LpProblem sub = problem;
    sub.lo = node.lo;
    sub.hi = node.hi;
    const LpResult relax = solve_lp(sub);
    if (relax.status != LpStatus::kOptimal) continue;
    if (relax.objective <= incumbent + 1e-9) continue;  // bound prune

    const std::size_t frac =
        most_fractional(relax.x, binary_vars, config.integrality_tol);
    if (frac == static_cast<std::size_t>(-1)) {
      // Integral solution: new incumbent.
      if (first_node) result.relaxation_was_integral = true;
      incumbent = relax.objective;
      result.feasible = true;
      result.objective = relax.objective;
      result.x = relax.x;
      // Snap binaries exactly.
      for (std::size_t j : binary_vars) result.x[j] = std::round(result.x[j]);
      first_node = false;
      continue;
    }
    first_node = false;

    // Branch: explore the rounded side first (DFS, stack order reversed).
    Node down = node, up = node;
    down.hi[frac] = 0.0;
    up.lo[frac] = 1.0;
    if (relax.x[frac] >= 0.5) {
      stack.push_back(std::move(down));
      stack.push_back(std::move(up));
    } else {
      stack.push_back(std::move(up));
      stack.push_back(std::move(down));
    }
  }
  return result;
}

}  // namespace frote
