#include "frote/opt/lp.hpp"

#include <algorithm>
#include <cmath>

#include "frote/util/error.hpp"

namespace frote {

namespace {

constexpr double kTol = 1e-9;

/// Solve M x = rhs by Gaussian elimination with partial pivoting.
/// Returns false when M is (numerically) singular.
bool dense_solve(std::vector<double> m, std::vector<double> rhs,
                 std::size_t n, std::vector<double>& out) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t col = 0; col < n; ++col) {
    // Pivot.
    std::size_t best = col;
    double best_abs = std::abs(m[perm[col] * n + col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(m[perm[r] * n + col]);
      if (v > best_abs) {
        best_abs = v;
        best = r;
      }
    }
    if (best_abs < 1e-12) return false;
    std::swap(perm[col], perm[best]);
    const double pivot = m[perm[col] * n + col];
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = m[perm[r] * n + col] / pivot;
      if (factor == 0.0) continue;
      for (std::size_t k = col; k < n; ++k) {
        m[perm[r] * n + k] -= factor * m[perm[col] * n + k];
      }
      rhs[perm[r]] -= factor * rhs[perm[col]];
    }
  }
  out.assign(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = rhs[perm[i]];
    for (std::size_t k = i + 1; k < n; ++k) {
      acc -= m[perm[i] * n + k] * out[k];
    }
    out[i] = acc / m[perm[i] * n + i];
  }
  return true;
}

enum class VarState { kBasic, kAtLower, kAtUpper };

}  // namespace

LpResult solve_lp(const LpProblem& problem, std::size_t max_iterations) {
  const std::size_t n = problem.num_vars;
  const std::size_t m = problem.num_rows;
  FROTE_CHECK(problem.c.size() == n && problem.lo.size() == n &&
              problem.hi.size() == n);
  FROTE_CHECK(problem.a.size() == n * m && problem.b.size() == m);
  for (std::size_t j = 0; j < n; ++j) {
    FROTE_CHECK_MSG(problem.lo[j] <= problem.hi[j],
                    "variable " << j << " has empty bound range");
  }

  // Extended problem: user variables + m artificials. Artificial i has
  // column sign_i * e_i so that its initial value is non-negative.
  const std::size_t total = n + m;
  // Big-M large relative to the data.
  double big_m = 1.0;
  for (double v : problem.c) big_m = std::max(big_m, std::abs(v));
  big_m *= 1e6 * static_cast<double>(std::max<std::size_t>(1, n));

  std::vector<VarState> state(total, VarState::kAtLower);
  std::vector<double> x(total, 0.0);
  // Nonbasic user variables start at the bound of smaller magnitude
  // (finite lower bound preferred).
  for (std::size_t j = 0; j < n; ++j) {
    x[j] = problem.lo[j];
    state[j] = VarState::kAtLower;
  }

  // Residuals decide the artificial signs.
  std::vector<double> residual(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    double acc = problem.b[i];
    for (std::size_t j = 0; j < n; ++j) acc -= problem.coeff(i, j) * x[j];
    residual[i] = acc;
  }
  std::vector<double> art_sign(m, 1.0);
  std::vector<std::size_t> basis(m);
  for (std::size_t i = 0; i < m; ++i) {
    art_sign[i] = residual[i] >= 0.0 ? 1.0 : -1.0;
    basis[i] = n + i;
    state[n + i] = VarState::kBasic;
    x[n + i] = std::abs(residual[i]);
  }

  auto column = [&](std::size_t var, std::vector<double>& col) {
    col.assign(m, 0.0);
    if (var < n) {
      for (std::size_t i = 0; i < m; ++i) col[i] = problem.coeff(i, var);
    } else {
      col[var - n] = art_sign[var - n];
    }
  };
  auto cost = [&](std::size_t var) {
    return var < n ? problem.c[var] : -big_m;
  };
  auto lower = [&](std::size_t var) { return var < n ? problem.lo[var] : 0.0; };
  auto upper = [&](std::size_t var) {
    return var < n ? problem.hi[var] : kLpInfinity;
  };

  std::vector<double> bmat(m * m), y, dir, col_e;
  std::size_t degenerate_steps = 0;

  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    // Basis matrix (columns of basic variables).
    for (std::size_t i = 0; i < m; ++i) {
      std::vector<double> col;
      column(basis[i], col);
      for (std::size_t r = 0; r < m; ++r) bmat[r * m + i] = col[r];
    }
    // Duals: B' y = c_B.
    std::vector<double> bt(m * m), cb(m);
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t k = 0; k < m; ++k) bt[r * m + k] = bmat[k * m + r];
    }
    for (std::size_t i = 0; i < m; ++i) cb[i] = cost(basis[i]);
    if (!dense_solve(bt, cb, m, y)) {
      return {LpStatus::kIterationLimit, 0.0, {}};
    }

    // Pricing: entering variable.
    const bool use_bland = degenerate_steps > 2 * (m + n);
    std::size_t entering = total;
    double best_score = kTol;
    int enter_dir = 0;  // +1 increase from lower, -1 decrease from upper
    for (std::size_t j = 0; j < total; ++j) {
      if (state[j] == VarState::kBasic) continue;
      std::vector<double> col;
      column(j, col);
      double d = cost(j);
      for (std::size_t i = 0; i < m; ++i) d -= y[i] * col[i];
      if (state[j] == VarState::kAtLower && d > kTol) {
        if (use_bland) {
          entering = j;
          enter_dir = 1;
          break;
        }
        if (d > best_score) {
          best_score = d;
          entering = j;
          enter_dir = 1;
        }
      } else if (state[j] == VarState::kAtUpper && d < -kTol) {
        if (use_bland) {
          entering = j;
          enter_dir = -1;
          break;
        }
        if (-d > best_score) {
          best_score = -d;
          entering = j;
          enter_dir = -1;
        }
      }
    }

    if (entering == total) {
      // Optimal for the extended problem: check artificials.
      for (std::size_t i = 0; i < m; ++i) {
        if (basis[i] >= n && x[basis[i]] > 1e-6) {
          return {LpStatus::kInfeasible, 0.0, {}};
        }
      }
      LpResult result;
      result.status = LpStatus::kOptimal;
      result.x.assign(problem.c.size(), 0.0);
      for (std::size_t j = 0; j < n; ++j) result.x[j] = x[j];
      result.objective = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        result.objective += problem.c[j] * x[j];
      }
      return result;
    }

    // Direction: B d = A_entering.
    column(entering, col_e);
    if (!dense_solve(bmat, col_e, m, dir)) {
      return {LpStatus::kIterationLimit, 0.0, {}};
    }
    // Entering moves by t ≥ 0 in direction sigma; basic vars move by
    // -sigma * d_i * t.
    const double sigma = static_cast<double>(enter_dir);

    double t_max = upper(entering) - lower(entering);  // bound flip limit
    int leaving = -1;     // index into basis; -1 ⇒ bound flip
    int leaving_to = 0;   // -1: leaves at lower, +1: leaves at upper
    for (std::size_t i = 0; i < m; ++i) {
      const double delta = -sigma * dir[i];
      const std::size_t var = basis[i];
      if (delta > kTol) {
        // Basic variable increases toward its upper bound.
        const double room = upper(var) - x[var];
        const double t = room / delta;
        if (t < t_max - kTol) {
          t_max = t;
          leaving = static_cast<int>(i);
          leaving_to = 1;
        }
      } else if (delta < -kTol) {
        const double room = x[var] - lower(var);
        const double t = room / (-delta);
        if (t < t_max - kTol) {
          t_max = t;
          leaving = static_cast<int>(i);
          leaving_to = -1;
        }
      }
    }
    if (t_max == kLpInfinity) {
      // Unbounded cannot occur with bounded user vars; artificials only
      // shrink. Treat as failure.
      return {LpStatus::kIterationLimit, 0.0, {}};
    }
    if (t_max <= kTol) {
      ++degenerate_steps;
    } else {
      degenerate_steps = 0;
    }

    // Apply the step.
    for (std::size_t i = 0; i < m; ++i) {
      x[basis[i]] += -sigma * dir[i] * t_max;
    }
    x[entering] += sigma * t_max;

    if (leaving < 0) {
      // Bound flip: entering switches bounds, basis unchanged.
      state[entering] =
          enter_dir > 0 ? VarState::kAtUpper : VarState::kAtLower;
      x[entering] = enter_dir > 0 ? upper(entering) : lower(entering);
    } else {
      const std::size_t out_var = basis[static_cast<std::size_t>(leaving)];
      state[out_var] = leaving_to > 0 ? VarState::kAtUpper : VarState::kAtLower;
      x[out_var] = leaving_to > 0 ? upper(out_var) : lower(out_var);
      basis[static_cast<std::size_t>(leaving)] = entering;
      state[entering] = VarState::kBasic;
    }
  }
  return {LpStatus::kIterationLimit, 0.0, {}};
}

}  // namespace frote
