// Dense bounded-variable primal simplex.
//
// FROTE's IP (5) is tiny — one row per feedback rule (m ≤ 20), one column
// per base-population instance (p ≤ a few hundred) — so a textbook dense
// simplex with explicit basis refactorisation each iteration is both simple
// and fast. Range constraints l ≤ a'z ≤ u are pre-converted by the caller
// into equalities with bounded slacks. Artificial variables with Big-M costs
// provide the initial basis.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace frote {

/// maximize c'x  subject to  A x = b,  lo ≤ x ≤ hi  (hi may be +inf).
struct LpProblem {
  std::size_t num_vars = 0;
  std::size_t num_rows = 0;
  std::vector<double> c;   // num_vars
  std::vector<double> lo;  // num_vars
  std::vector<double> hi;  // num_vars
  std::vector<double> a;   // row-major, num_rows x num_vars
  std::vector<double> b;   // num_rows

  double coeff(std::size_t row, std::size_t var) const {
    return a[row * num_vars + var];
  }
  void set_coeff(std::size_t row, std::size_t var, double value) {
    a[row * num_vars + var] = value;
  }
};

enum class LpStatus { kOptimal, kInfeasible, kIterationLimit };

struct LpResult {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> x;
};

/// Solve with the bounded-variable simplex. `max_iterations` guards against
/// cycling (Bland's rule is applied when progress stalls).
LpResult solve_lp(const LpProblem& problem, std::size_t max_iterations = 5000);

constexpr double kLpInfinity = std::numeric_limits<double>::infinity();

}  // namespace frote
