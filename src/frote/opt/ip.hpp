// 0/1 integer programming by LP-relaxation branch & bound.
//
// The paper observes that for IP (5) "linear relaxations directly provide
// integral optimal solutions in most cases" (§4.1); branch & bound handles
// the rest. The solver is generic over LpProblem instances whose designated
// variables must be binary.
#pragma once

#include <vector>

#include "frote/opt/lp.hpp"

namespace frote {

struct IpConfig {
  std::size_t max_nodes = 400;
  double integrality_tol = 1e-6;
};

struct IpResult {
  bool feasible = false;
  double objective = 0.0;
  std::vector<double> x;
  std::size_t nodes_explored = 0;
  /// True when the root LP relaxation was already integral.
  bool relaxation_was_integral = false;
};

/// Solve max c'x, Ax = b, lo ≤ x ≤ hi with x_j ∈ {0,1} for j in
/// `binary_vars`. Branches on the most fractional binary variable.
IpResult solve_binary_ip(const LpProblem& problem,
                         const std::vector<std::size_t>& binary_vars,
                         const IpConfig& config = {});

}  // namespace frote
