// JSON-RPC 2.0 envelope for the frote_serve protocol (docs/DESIGN.md §7).
//
// One request per line (stdio frontend) or per POST body (HTTP frontend);
// both transports carry the same envelope, so the response to a request is
// byte-identical whichever way it arrives. Parsing is strict — the same
// philosophy as util/json.hpp: a served protocol is a long-lived contract
// and silent tolerance turns client bugs into behaviour.
//
// Validation is split into the two halves JSON-RPC 2.0 distinguishes:
//   * transport bytes that are not a JSON document  → kParseError  (-32700)
//   * a JSON document that is not a request object  → kInvalidRequest
//     (wrong/missing "jsonrpc", missing/invalid "id", missing "method",
//     non-object "params", oversized line)           (-32600)
// Method-level failures are reported by the dispatcher with
// kMethodNotFound / kInvalidParams / kSessionNotFound / kInternalError.
//
// Request ids may be strings or integers (never null/fractional — this is
// a lockstep request/response daemon, notifications are not served);
// responses echo the id verbatim. Unknown envelope keys are ignored, the
// same forward-compat posture as the spec documents (§6).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "frote/util/error.hpp"
#include "frote/util/json.hpp"

namespace frote::net {

/// JSON-RPC 2.0 error codes used by the protocol (negative per spec;
/// -32000..-32099 is the server-defined range).
enum RpcErrorCode : int {
  kParseError = -32700,      // transport bytes are not a JSON document
  kInvalidRequest = -32600,  // JSON, but not a JSON-RPC 2.0 request object
  kMethodNotFound = -32601,  // unknown "method"
  kInvalidParams = -32602,   // params missing/mistyped/unresolvable
  kInternalError = -32603,   // unexpected failure while executing
  kSessionNotFound = -32001,  // stale, closed, or never-issued session id
  kSessionUnrecoverable = -32002,  // spool state corrupt; session is gone
  kOverloaded = -32005,      // admission limit hit; retry after backoff
};

/// A validated request envelope. `id` is kept as the original JsonValue
/// (string or integer) so the response echoes it exactly.
struct RpcRequest {
  JsonValue id;
  std::string method;
  JsonValue params;  // object; an absent "params" key parses as {}
};

/// Parse + validate one request line/body. Errors carry the proper
/// JSON-RPC code in `rpc_code` and a human message; `id` holds the
/// request's id when one could still be extracted (so even a rejected
/// request gets a correlatable response where possible).
struct RpcParseError {
  int rpc_code = kInvalidRequest;
  std::string message;
  JsonValue id;  // null unless the envelope carried a usable id
};
Expected<RpcRequest, RpcParseError> parse_rpc_request(std::string_view text);

/// Serialise a success / error response envelope (compact single-line JSON,
/// ready for the line-delimited stdio framing).
std::string rpc_result_line(const JsonValue& id, JsonValue result);
std::string rpc_error_line(const JsonValue& id, int code,
                           const std::string& message);
/// Error envelope with a machine-readable "data" member (e.g. the
/// {"retry_after_ms": …} hint on kOverloaded responses).
std::string rpc_error_line(const JsonValue& id, int code,
                           const std::string& message, JsonValue data);

/// Map a FroteError raised while executing a method onto the protocol
/// code: every config/parse/registry/argument problem is the caller's
/// params (-32602), I/O is the server's fault (-32603).
int rpc_code_for(const FroteError& error);

}  // namespace frote::net
