#include "frote/net/http.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>

#include "frote/util/faultsim.hpp"

namespace frote::net {

namespace {

std::string lower(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return text;
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// write() the whole buffer, retrying on EINTR/short writes. False on a
/// broken connection (the client went away; the server just moves on).
bool write_all(int fd, const char* data, std::size_t size) {
  if (faultsim::should_fail("net.write")) return false;
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    default: return "Status";
  }
}

void send_response(int fd, const HttpResponse& response) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     status_text(response.status) +
                     "\r\nContent-Type: " + response.content_type +
                     "\r\nContent-Length: " +
                     std::to_string(response.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  if (write_all(fd, head.data(), head.size())) {
    write_all(fd, response.body.data(), response.body.size());
  }
}

/// Parse "METHOD target HTTP/1.1" + headers out of the raw head bytes.
/// False on anything that is not a complete, well-formed head.
bool parse_head(const std::string& head, HttpRequest& request) {
  const std::size_t line_end = head.find("\r\n");
  if (line_end == std::string::npos) return false;
  const std::string request_line = head.substr(0, line_end);
  const std::size_t method_end = request_line.find(' ');
  if (method_end == std::string::npos) return false;
  const std::size_t target_end = request_line.find(' ', method_end + 1);
  if (target_end == std::string::npos) return false;
  request.method = request_line.substr(0, method_end);
  request.target =
      request_line.substr(method_end + 1, target_end - method_end - 1);
  if (request_line.substr(target_end + 1).rfind("HTTP/1.", 0) != 0) {
    return false;
  }
  std::size_t pos = line_end + 2;
  while (pos < head.size()) {
    const std::size_t end = head.find("\r\n", pos);
    const std::string line =
        head.substr(pos, end == std::string::npos ? std::string::npos
                                                  : end - pos);
    if (line.empty()) break;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) return false;
    std::string value = line.substr(colon + 1);
    const std::size_t first = value.find_first_not_of(" \t");
    const std::size_t last = value.find_last_not_of(" \t");
    value = first == std::string::npos
                ? std::string()
                : value.substr(first, last - first + 1);
    request.headers.emplace_back(lower(line.substr(0, colon)),
                                 std::move(value));
    if (end == std::string::npos) break;
    pos = end + 2;
  }
  return true;
}

}  // namespace

const std::string* HttpRequest::header(const std::string& name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

Expected<HttpServer, FroteError> HttpServer::listen(std::uint16_t port,
                                                    int backlog) {
  HttpServer server;
  server.listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (server.listen_fd_ < 0) {
    return FroteError::io_error(std::string("socket: ") +
                                std::strerror(errno));
  }
  const int reuse = 1;
  ::setsockopt(server.listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse,
               sizeof reuse);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(server.listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof addr) != 0) {
    return FroteError::io_error("bind 127.0.0.1:" + std::to_string(port) +
                                ": " + std::strerror(errno));
  }
  if (::listen(server.listen_fd_, backlog) != 0) {
    return FroteError::io_error(std::string("listen: ") +
                                std::strerror(errno));
  }
  socklen_t addr_len = sizeof addr;
  if (::getsockname(server.listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    return FroteError::io_error(std::string("getsockname: ") +
                                std::strerror(errno));
  }
  server.port_ = ntohs(addr.sin_port);
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return FroteError::io_error(std::string("pipe: ") + std::strerror(errno));
  }
  server.wake_read_fd_ = pipe_fds[0];
  server.wake_write_fd_ = pipe_fds[1];
  return server;
}

HttpServer::HttpServer(HttpServer&& other) noexcept
    : listen_fd_(other.listen_fd_),
      wake_read_fd_(other.wake_read_fd_),
      wake_write_fd_(other.wake_write_fd_),
      port_(other.port_) {
  other.listen_fd_ = other.wake_read_fd_ = other.wake_write_fd_ = -1;
}

HttpServer& HttpServer::operator=(HttpServer&& other) noexcept {
  if (this != &other) {
    close_fd(listen_fd_);
    close_fd(wake_read_fd_);
    close_fd(wake_write_fd_);
    listen_fd_ = other.listen_fd_;
    wake_read_fd_ = other.wake_read_fd_;
    wake_write_fd_ = other.wake_write_fd_;
    port_ = other.port_;
    other.listen_fd_ = other.wake_read_fd_ = other.wake_write_fd_ = -1;
  }
  return *this;
}

HttpServer::~HttpServer() {
  close_fd(listen_fd_);
  close_fd(wake_read_fd_);
  close_fd(wake_write_fd_);
}

void HttpServer::stop() {
  if (wake_write_fd_ >= 0) {
    const char byte = 'x';
    // Best-effort and async-signal-safe; a full pipe already means a
    // pending wake-up.
    [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
  }
}

void HttpServer::serve(
    const std::function<HttpResponse(const HttpRequest&)>& handler,
    HttpLimits limits) {
  using Clock = std::chrono::steady_clock;
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_read_fd_, POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // stop() was called
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    if (faultsim::should_fail("net.accept")) {
      // Simulated accept failure: the connection is dropped before a
      // single byte is read, as if the kernel ran out of fds.
      ::close(client);
      continue;
    }

    // Read head + body under one whole-request deadline. Buffering is
    // bounded at every stage: the head by max_header_bytes, the body by
    // the (already-validated) Content-Length.
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(limits.read_timeout_ms);
    std::string data;
    HttpRequest request;
    bool head_done = false;
    std::size_t body_start = 0;
    std::size_t content_length = 0;
    bool bad = false;
    bool dropped = false;
    bool timed_out = false;
    bool too_large = false;
    bool head_too_large = false;
    char buffer[4096];
    for (;;) {
      if (limits.read_timeout_ms > 0) {
        const auto remaining = std::chrono::duration_cast<
            std::chrono::milliseconds>(deadline - Clock::now()).count();
        if (remaining <= 0) {
          timed_out = true;
          break;
        }
        pollfd client_fd{client, POLLIN, 0};
        const int got = ::poll(&client_fd, 1, static_cast<int>(remaining));
        if (got < 0) {
          if (errno == EINTR) continue;
          dropped = true;
          break;
        }
        if (got == 0) {
          timed_out = true;
          break;
        }
      }
      if (faultsim::should_fail("net.read")) {
        dropped = true;  // simulated mid-request connection loss
        break;
      }
      const ssize_t n = ::read(client, buffer, sizeof buffer);
      if (n < 0) {
        if (errno == EINTR) continue;
        dropped = true;
        break;
      }
      if (n == 0) {
        bad = !head_done || data.size() - body_start < content_length;
        break;
      }
      data.append(buffer, static_cast<std::size_t>(n));
      if (!head_done) {
        const std::size_t head_end = data.find("\r\n\r\n");
        if (head_end == std::string::npos) {
          if (data.size() > limits.max_header_bytes) {
            head_too_large = true;
            break;
          }
          continue;
        }
        if (head_end + 2 > limits.max_header_bytes) {
          head_too_large = true;
          break;
        }
        head_done = true;
        body_start = head_end + 4;
        if (!parse_head(data.substr(0, head_end + 2), request)) {
          bad = true;
          break;
        }
        if (const std::string* header = request.header("content-length")) {
          char* end = nullptr;
          const unsigned long long parsed =
              std::strtoull(header->c_str(), &end, 10);
          if (end == nullptr || *end != '\0') {
            bad = true;
            break;
          }
          content_length = static_cast<std::size_t>(parsed);
          if (content_length > limits.max_body_bytes) {
            too_large = true;
            break;
          }
        }
      }
      if (head_done && data.size() - body_start >= content_length) break;
    }

    if (dropped) {
      // Peer (or the fault simulator) abandoned the connection; there is
      // nobody to answer.
      ::close(client);
      continue;
    }
    HttpResponse response;
    if (timed_out) {
      response.status = 408;
      response.body = "read deadline exceeded\n";
      response.content_type = "text/plain";
    } else if (head_too_large) {
      response.status = 431;
      response.body = "request head too large\n";
      response.content_type = "text/plain";
    } else if (too_large) {
      response.status = 413;
      response.body = "request body too large\n";
      response.content_type = "text/plain";
    } else if (bad) {
      response.status = 400;
      response.body = "malformed HTTP request\n";
      response.content_type = "text/plain";
    } else {
      request.body = data.substr(body_start, content_length);
      try {
        response = handler(request);
      } catch (const std::exception& e) {
        response = HttpResponse{};
        response.status = 500;
        response.content_type = "text/plain";
        response.body = std::string("internal error: ") + e.what() + "\n";
      }
    }
    send_response(client, response);
    ::shutdown(client, SHUT_RDWR);
    ::close(client);
  }
}

Expected<HttpResponse, FroteError> http_post(std::uint16_t port,
                                             const std::string& target,
                                             const std::string& body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return FroteError::io_error(std::string("socket: ") +
                                std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    return FroteError::io_error("connect 127.0.0.1:" + std::to_string(port) +
                                ": " + reason);
  }
  const std::string head = "POST " + target +
                           " HTTP/1.1\r\nHost: 127.0.0.1\r\nContent-Type: "
                           "application/json\r\nContent-Length: " +
                           std::to_string(body.size()) +
                           "\r\nConnection: close\r\n\r\n";
  if (!write_all(fd, head.data(), head.size()) ||
      !write_all(fd, body.data(), body.size())) {
    ::close(fd);
    return FroteError::io_error("send failed");
  }
  ::shutdown(fd, SHUT_WR);
  std::string data;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof buffer);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return FroteError::io_error(std::string("read: ") +
                                  std::strerror(errno));
    }
    if (n == 0) break;
    data.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t head_end = data.find("\r\n\r\n");
  if (head_end == std::string::npos || data.rfind("HTTP/1.", 0) != 0) {
    return FroteError::io_error("malformed HTTP response");
  }
  HttpResponse response;
  const std::size_t status_begin = data.find(' ');
  if (status_begin == std::string::npos || status_begin > head_end) {
    return FroteError::io_error("malformed HTTP status line");
  }
  response.status = std::atoi(data.c_str() + status_begin + 1);
  // Connection: close framing — the body is everything after the head.
  response.body = data.substr(head_end + 4);
  return response;
}

}  // namespace frote::net
