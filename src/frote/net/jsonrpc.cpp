#include "frote/net/jsonrpc.hpp"

namespace frote::net {

namespace {

bool valid_id(const JsonValue& id) {
  // Strings and integers only: null ids are reserved for "id unknown"
  // error responses, fractional ids are a client bug the spec warns about.
  return id.type() == JsonType::kString || id.type() == JsonType::kInt ||
         id.type() == JsonType::kUint;
}

}  // namespace

Expected<RpcRequest, RpcParseError> parse_rpc_request(std::string_view text) {
  auto json = json_parse(text);
  if (!json) {
    return RpcParseError{kParseError, json.error().message, JsonValue()};
  }
  if (!json->is_object()) {
    return RpcParseError{kInvalidRequest,
                         "request must be a JSON object (batch requests are "
                         "not supported)",
                         JsonValue()};
  }
  // Salvage the id first so every later rejection can still be correlated.
  JsonValue id;
  if (const JsonValue* raw_id = json->find("id");
      raw_id != nullptr && valid_id(*raw_id)) {
    id = *raw_id;
  }
  const JsonValue* jsonrpc = json->find("jsonrpc");
  if (jsonrpc == nullptr || !jsonrpc->is_string() ||
      jsonrpc->as_string() != "2.0") {
    return RpcParseError{kInvalidRequest, "\"jsonrpc\" must be \"2.0\"", id};
  }
  const JsonValue* raw_id = json->find("id");
  if (raw_id == nullptr) {
    return RpcParseError{
        kInvalidRequest,
        "missing \"id\" (notifications are not served; every request gets "
        "a response)",
        id};
  }
  if (!valid_id(*raw_id)) {
    return RpcParseError{kInvalidRequest,
                         "\"id\" must be a string or an integer", id};
  }
  const JsonValue* method = json->find("method");
  if (method == nullptr || !method->is_string()) {
    return RpcParseError{kInvalidRequest, "\"method\" must be a string", id};
  }
  RpcRequest request;
  request.id = *raw_id;
  request.method = method->as_string();
  if (const JsonValue* params = json->find("params")) {
    if (!params->is_object()) {
      return RpcParseError{kInvalidRequest, "\"params\" must be an object",
                           id};
    }
    request.params = *params;
  } else {
    request.params = JsonValue::object();
  }
  return request;
}

std::string rpc_result_line(const JsonValue& id, JsonValue result) {
  JsonValue envelope = JsonValue::object();
  envelope.set("jsonrpc", "2.0");
  envelope.set("id", id);
  envelope.set("result", std::move(result));
  return json_dump(envelope, 0);
}

std::string rpc_error_line(const JsonValue& id, int code,
                           const std::string& message) {
  JsonValue error = JsonValue::object();
  error.set("code", std::int64_t{code});
  error.set("message", message);
  JsonValue envelope = JsonValue::object();
  envelope.set("jsonrpc", "2.0");
  envelope.set("id", id);
  envelope.set("error", std::move(error));
  return json_dump(envelope, 0);
}

std::string rpc_error_line(const JsonValue& id, int code,
                           const std::string& message, JsonValue data) {
  JsonValue error = JsonValue::object();
  error.set("code", std::int64_t{code});
  error.set("message", message);
  error.set("data", std::move(data));
  JsonValue envelope = JsonValue::object();
  envelope.set("jsonrpc", "2.0");
  envelope.set("id", id);
  envelope.set("error", std::move(error));
  return json_dump(envelope, 0);
}

int rpc_code_for(const FroteError& error) {
  switch (error.code) {
    case FroteErrorCode::kIoError:
      return kInternalError;
    case FroteErrorCode::kInvalidConfig:
    case FroteErrorCode::kInvalidArgument:
    case FroteErrorCode::kUnknownComponent:
    case FroteErrorCode::kMissingDependency:
    case FroteErrorCode::kParseError:
      return kInvalidParams;
  }
  return kInternalError;
}

}  // namespace frote::net
