// Minimal vendored HTTP/1.1 transport for the frote_serve daemon.
//
// Vendored rather than depended upon, following the minigtest /
// minibenchmark / util/json.hpp philosophy: the serving layer must build
// offline with no third-party packages. The dialect is the smallest slice
// of HTTP/1.1 a lockstep JSON-RPC client needs — one request per
// connection, Content-Length framing, no chunked encoding, no keep-alive,
// no TLS — because the listener exists to carry the same line-delimited
// JSON-RPC payloads the stdio frontend speaks, not to be a web server.
//
//   auto server = net::HttpServer::listen(0).value();   // 0 = ephemeral
//   std::uint16_t port = server.port();                 // the bound port
//   server.serve([](const net::HttpRequest& request) {  // blocks until
//     net::HttpResponse response;                       // stop()
//     response.body = handle(request.body);
//     return response;
//   });
//
// stop() only write()s one byte to an internal wake pipe, so it is
// async-signal-safe: the daemon's SIGTERM handler calls it directly and
// serve() returns between requests. Connections are handled one at a time
// on the serve() thread — per-session request ordering stays deterministic
// because there is exactly one in-flight request per transport.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "frote/util/error.hpp"

namespace frote::net {

struct HttpRequest {
  std::string method;  // "POST"
  std::string target;  // "/rpc"
  /// Headers in arrival order, names lower-cased.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Header lookup by lower-case name; nullptr when absent.
  const std::string* header(const std::string& name) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// Per-connection resource bounds for serve(). Every limit maps to a
/// specific abuse: max_header_bytes caps head buffering (431),
/// max_body_bytes caps declared and actual body size (413), and
/// read_timeout_ms is a whole-request read deadline — a client that
/// trickles bytes (slowloris) or stalls mid-body gets 408 and the
/// connection back, instead of parking the serve loop forever.
struct HttpLimits {
  std::size_t max_body_bytes = std::size_t{4} << 20;
  std::size_t max_header_bytes = std::size_t{64} << 10;
  int read_timeout_ms = 5000;  // <= 0 means no deadline
};

class HttpServer {
 public:
  /// Bind and listen on 127.0.0.1:`port` (0 picks an ephemeral port; read
  /// the result back with port()). Fails with kIoError when the port is
  /// taken or sockets are unavailable.
  static Expected<HttpServer, FroteError> listen(std::uint16_t port,
                                                 int backlog = 16);

  HttpServer(HttpServer&& other) noexcept;
  HttpServer& operator=(HttpServer&& other) noexcept;
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;
  ~HttpServer();

  std::uint16_t port() const { return port_; }

  /// Accept loop: handle one connection at a time, invoking `handler` per
  /// request and writing its response. Malformed requests get 400, bodies
  /// beyond limits.max_body_bytes get 413, heads beyond
  /// limits.max_header_bytes get 431, and connections that miss the
  /// limits.read_timeout_ms read deadline get 408 — all without reaching
  /// the handler. Handler exceptions become 500 responses; the loop keeps
  /// serving. Returns when stop() is called.
  void serve(const std::function<HttpResponse(const HttpRequest&)>& handler,
             HttpLimits limits = {});

  /// Wake serve() and make it return after the in-flight request, if any.
  /// Async-signal-safe (a single write() on a pipe) — callable from a
  /// signal handler and from any thread.
  void stop();

 private:
  HttpServer() = default;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::uint16_t port_ = 0;
};

/// One-shot HTTP/1.1 client for the lockstep --drive mode and the serve
/// bench: connect to 127.0.0.1:`port`, POST `body` to `target`, read the
/// response until the peer closes. Fails with kIoError on connect/IO
/// problems and on an unparsable status line.
Expected<HttpResponse, FroteError> http_post(std::uint16_t port,
                                             const std::string& target,
                                             const std::string& body);

}  // namespace frote::net
