#include "frote/metrics/metrics.hpp"

#include "frote/util/parallel.hpp"

namespace frote {

namespace {
/// Rows per chunk of the evaluation sweeps. Fixed, so the accumulation order
/// of the floating MRA terms depends only on the dataset size.
constexpr std::size_t kEvalGrain = 256;
}  // namespace

std::vector<int>& PredictionCache::reset(const Dataset& data,
                                         std::uint64_t model_stamp) {
  predicted_.assign(data.size(), -1);
  uid_ = data.uid();
  epoch_ = data.append_epoch();
  model_stamp_ = model_stamp;
  valid_ = false;  // mark_filled() flips this once the fill completed
  return predicted_;
}

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes)
    : classes_(num_classes), counts_(num_classes * num_classes, 0) {
  FROTE_CHECK(num_classes >= 2);
}

void ConfusionMatrix::add(int true_label, int predicted_label) {
  add(true_label, predicted_label, 1);
}

void ConfusionMatrix::add(int true_label, int predicted_label,
                          std::size_t count) {
  FROTE_CHECK(true_label >= 0 &&
              static_cast<std::size_t>(true_label) < classes_);
  FROTE_CHECK(predicted_label >= 0 &&
              static_cast<std::size_t>(predicted_label) < classes_);
  counts_[static_cast<std::size_t>(true_label) * classes_ +
          static_cast<std::size_t>(predicted_label)] += count;
  total_ += count;
}

std::size_t ConfusionMatrix::count(int true_label, int predicted_label) const {
  return counts_[static_cast<std::size_t>(true_label) * classes_ +
                 static_cast<std::size_t>(predicted_label)];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t c = 0; c < classes_; ++c) {
    correct += counts_[c * classes_ + c];
  }
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::f1(int cls) const {
  const auto c = static_cast<std::size_t>(cls);
  std::size_t tp = counts_[c * classes_ + c];
  std::size_t fp = 0, fn = 0;
  for (std::size_t other = 0; other < classes_; ++other) {
    if (other == c) continue;
    fp += counts_[other * classes_ + c];
    fn += counts_[c * classes_ + other];
  }
  const double denom = static_cast<double>(2 * tp + fp + fn);
  if (denom == 0.0) return 0.0;
  return 2.0 * static_cast<double>(tp) / denom;
}

double ConfusionMatrix::macro_f1() const {
  double acc = 0.0;
  std::size_t present = 0;
  for (std::size_t c = 0; c < classes_; ++c) {
    std::size_t support = 0;
    for (std::size_t p = 0; p < classes_; ++p) support += counts_[c * classes_ + p];
    if (support == 0) continue;
    acc += f1(static_cast<int>(c));
    ++present;
  }
  return present > 0 ? acc / static_cast<double>(present) : 0.0;
}

double ConfusionMatrix::weighted_f1() const {
  double acc = 0.0;
  std::size_t total_support = 0;
  for (std::size_t c = 0; c < classes_; ++c) {
    std::size_t support = 0;
    for (std::size_t p = 0; p < classes_; ++p) support += counts_[c * classes_ + p];
    acc += static_cast<double>(support) * f1(static_cast<int>(c));
    total_support += support;
  }
  return total_support > 0 ? acc / static_cast<double>(total_support) : 0.0;
}

RuleAgreement rule_agreement(const Model& model, const FeedbackRule& rule,
                             const Dataset& data, int threads) {
  // Chunked sweep; per-chunk accumulators combine in ascending chunk order,
  // and only covered rows pay for a prediction (batched, allocation-free).
  struct Partial {
    double acc = 0.0;
    std::size_t covered = 0;
  };
  const Partial total = parallel_reduce(
      data.size(), kEvalGrain, threads, Partial{},
      [&](std::size_t begin, std::size_t end) {
        Partial p;
        std::vector<double> proba;
        for (std::size_t i = begin; i < end; ++i) {
          const auto row = data.row(i);
          if (!rule.covers(row)) continue;
          ++p.covered;
          // E_{Y~π}[1 − L1(M(x), Y)] with 0-1 loss = π(M(x)).
          model.predict_proba_into(row, proba);
          p.acc += rule.pi.prob(argmax_class(proba));
        }
        return p;
      },
      [](Partial& acc, Partial&& part) {
        acc.acc += part.acc;
        acc.covered += part.covered;
      });
  RuleAgreement out;
  out.covered = total.covered;
  if (out.covered > 0) out.mra = total.acc / static_cast<double>(out.covered);
  return out;
}

namespace {

/// Shared sweep behind both evaluate_objective overloads. `read_cache`
/// serves predictions instead of calling the model; `fill_cache` records
/// each row's prediction as the sweep computes it. Exactly one prediction
/// per row flows into the accumulators either way, so all three modes
/// (plain / cache-hit / cache-fill) produce bit-identical breakdowns. The
/// mode is a template parameter so the plain path compiles to exactly the
/// pre-cache loop (no per-row mode branches).
template <bool kReadCache, bool kFillCache>
ObjectiveBreakdown evaluate_objective_impl(const Model& model,
                                           const FeedbackRuleSet& frs,
                                           const Dataset& data, int threads,
                                           const int* read_cache,
                                           int* fill_cache) {
  ObjectiveBreakdown out;
  if (data.empty()) return out;

  // One chunked pass over the dataset: per-rule agreement/coverage terms,
  // cov(F, D) membership, and the outside-coverage confusion counts. Each
  // row is predicted once (the batch entry point, no per-row allocations);
  // chunks combine in ascending order so the float accumulation order is a
  // pure function of (|D|, grain), never of the thread count.
  const std::size_t num_rules = frs.size();
  const std::size_t classes = data.num_classes();
  struct Partial {
    std::vector<double> rule_acc;       // Σ_covered π(M(x)) per rule
    std::vector<std::size_t> rule_cov;  // per-rule cover counts
    std::vector<std::size_t> cm;        // classes x classes confusion counts
    std::size_t covered = 0;
    std::size_t outside = 0;
  };
  const Partial total = parallel_reduce(
      data.size(), kEvalGrain, threads, Partial{},
      [&](std::size_t begin, std::size_t end) {
        Partial p;
        p.rule_acc.assign(num_rules, 0.0);
        p.rule_cov.assign(num_rules, 0);
        p.cm.assign(classes * classes, 0);
        std::vector<double> proba;
        const auto predict_row = [&](std::size_t i,
                                     std::span<const double> row) {
          if constexpr (kReadCache) {
            (void)row;
            return read_cache[i];
          } else {
            model.predict_proba_into(row, proba);
            const int predicted = argmax_class(proba);
            if constexpr (kFillCache) fill_cache[i] = predicted;
            return predicted;
          }
        };
        for (std::size_t i = begin; i < end; ++i) {
          const auto row = data.row(i);
          int predicted = -1;
          bool row_covered = false;
          for (std::size_t r = 0; r < num_rules; ++r) {
            const auto& rule = frs.rule(r);
            if (!rule.covers(row)) continue;
            row_covered = true;
            if (predicted < 0) predicted = predict_row(i, row);
            ++p.rule_cov[r];
            p.rule_acc[r] += rule.pi.prob(predicted);
          }
          if (row_covered) {
            ++p.covered;
          } else {
            ++p.outside;
            p.cm[static_cast<std::size_t>(data.label(i)) * classes +
                 static_cast<std::size_t>(predict_row(i, row))]++;
          }
        }
        return p;
      },
      [](Partial& acc, Partial&& part) {
        if (acc.rule_acc.empty() && acc.cm.empty()) {
          acc = std::move(part);
          return;
        }
        for (std::size_t r = 0; r < acc.rule_acc.size(); ++r) {
          acc.rule_acc[r] += part.rule_acc[r];
          acc.rule_cov[r] += part.rule_cov[r];
        }
        for (std::size_t c = 0; c < acc.cm.size(); ++c) {
          acc.cm[c] += part.cm[c];
        }
        acc.covered += part.covered;
        acc.outside += part.outside;
      });

  // Per-rule MRA terms summed in rule order, weighted by coverage — the same
  // reduction the rule-major sweep performed.
  double mra_weighted = 0.0;
  std::size_t cover_weights = 0;
  for (std::size_t r = 0; r < num_rules; ++r) {
    mra_weighted += total.rule_acc[r];
    cover_weights += total.rule_cov[r];
  }
  out.mra = cover_weights > 0
                ? mra_weighted / static_cast<double>(cover_weights)
                : 1.0;  // vacuously satisfied FRS

  ConfusionMatrix cm(classes);
  for (std::size_t t = 0; t < classes; ++t) {
    for (std::size_t pr = 0; pr < classes; ++pr) {
      cm.add(static_cast<int>(t), static_cast<int>(pr),
             total.cm[t * classes + pr]);
    }
  }
  out.covered = total.covered;
  out.outside = total.outside;
  // Support-weighted F1: robust when a class is absent from the outside
  // population (positive-class binary F1 degenerates to 0 there even for a
  // perfect model, so we use the weighted average for all class counts).
  out.outside_f1 = out.outside > 0 ? cm.weighted_f1() : 1.0;
  out.coverage_prob =
      static_cast<double>(out.covered) / static_cast<double>(data.size());
  return out;
}

}  // namespace

ObjectiveBreakdown evaluate_objective(const Model& model,
                                      const FeedbackRuleSet& frs,
                                      const Dataset& data, int threads) {
  return evaluate_objective_impl<false, false>(model, frs, data, threads,
                                               nullptr, nullptr);
}

ObjectiveBreakdown evaluate_objective(const Model& model,
                                      const FeedbackRuleSet& frs,
                                      const Dataset& data, int threads,
                                      PredictionCache& cache,
                                      std::uint64_t model_stamp) {
  if (cache.valid_for(data, model_stamp)) {
    return evaluate_objective_impl<true, false>(
        model, frs, data, threads, cache.predicted().data(), nullptr);
  }
  std::vector<int>& storage = cache.reset(data, model_stamp);
  const ObjectiveBreakdown out = evaluate_objective_impl<false, true>(
      model, frs, data, threads, nullptr, storage.data());
  cache.mark_filled();
  return out;
}

double test_j_bar(const Model& model, const FeedbackRuleSet& frs,
                  const Dataset& data, int threads) {
  const auto b = evaluate_objective(model, frs, data, threads);
  return b.j_bar(b.coverage_prob);
}

namespace {
double train_j_hat_bar_from(ObjectiveBreakdown b, const FeedbackRuleSet& frs) {
  // Pessimistic vacuous MRA: with no covered instance in the evaluation
  // dataset the model has demonstrated no rule agreement at all. This is
  // what lets Algorithm 1 bootstrap in the tcf = 0 regime — the first
  // accepted batch of synthetic instances creates coverage and flips the
  // MRA term from 0 toward 1.
  if (!frs.empty() && b.covered == 0) b.mra = 0.0;
  return b.j_bar(0.5);
}
}  // namespace

double train_j_hat_bar(const Model& model, const FeedbackRuleSet& frs,
                       const Dataset& data, int threads) {
  return train_j_hat_bar_from(evaluate_objective(model, frs, data, threads),
                              frs);
}

double train_j_hat_bar(const Model& model, const FeedbackRuleSet& frs,
                       const Dataset& data, int threads,
                       PredictionCache& cache, std::uint64_t model_stamp) {
  return train_j_hat_bar_from(
      evaluate_objective(model, frs, data, threads, cache, model_stamp), frs);
}

}  // namespace frote
