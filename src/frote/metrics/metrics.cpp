#include "frote/metrics/metrics.hpp"

namespace frote {

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes)
    : classes_(num_classes), counts_(num_classes * num_classes, 0) {
  FROTE_CHECK(num_classes >= 2);
}

void ConfusionMatrix::add(int true_label, int predicted_label) {
  FROTE_CHECK(true_label >= 0 &&
              static_cast<std::size_t>(true_label) < classes_);
  FROTE_CHECK(predicted_label >= 0 &&
              static_cast<std::size_t>(predicted_label) < classes_);
  counts_[static_cast<std::size_t>(true_label) * classes_ +
          static_cast<std::size_t>(predicted_label)]++;
  ++total_;
}

std::size_t ConfusionMatrix::count(int true_label, int predicted_label) const {
  return counts_[static_cast<std::size_t>(true_label) * classes_ +
                 static_cast<std::size_t>(predicted_label)];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t c = 0; c < classes_; ++c) {
    correct += counts_[c * classes_ + c];
  }
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::f1(int cls) const {
  const auto c = static_cast<std::size_t>(cls);
  std::size_t tp = counts_[c * classes_ + c];
  std::size_t fp = 0, fn = 0;
  for (std::size_t other = 0; other < classes_; ++other) {
    if (other == c) continue;
    fp += counts_[other * classes_ + c];
    fn += counts_[c * classes_ + other];
  }
  const double denom = static_cast<double>(2 * tp + fp + fn);
  if (denom == 0.0) return 0.0;
  return 2.0 * static_cast<double>(tp) / denom;
}

double ConfusionMatrix::macro_f1() const {
  double acc = 0.0;
  std::size_t present = 0;
  for (std::size_t c = 0; c < classes_; ++c) {
    std::size_t support = 0;
    for (std::size_t p = 0; p < classes_; ++p) support += counts_[c * classes_ + p];
    if (support == 0) continue;
    acc += f1(static_cast<int>(c));
    ++present;
  }
  return present > 0 ? acc / static_cast<double>(present) : 0.0;
}

double ConfusionMatrix::weighted_f1() const {
  double acc = 0.0;
  std::size_t total_support = 0;
  for (std::size_t c = 0; c < classes_; ++c) {
    std::size_t support = 0;
    for (std::size_t p = 0; p < classes_; ++p) support += counts_[c * classes_ + p];
    acc += static_cast<double>(support) * f1(static_cast<int>(c));
    total_support += support;
  }
  return total_support > 0 ? acc / static_cast<double>(total_support) : 0.0;
}

RuleAgreement rule_agreement(const Model& model, const FeedbackRule& rule,
                             const Dataset& data) {
  RuleAgreement out;
  double acc = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto row = data.row(i);
    if (!rule.covers(row)) continue;
    ++out.covered;
    // E_{Y~π}[1 − L1(M(x), Y)] with 0-1 loss = π(M(x)).
    acc += rule.pi.prob(model.predict(row));
  }
  if (out.covered > 0) out.mra = acc / static_cast<double>(out.covered);
  return out;
}

ObjectiveBreakdown evaluate_objective(const Model& model,
                                      const FeedbackRuleSet& frs,
                                      const Dataset& data) {
  ObjectiveBreakdown out;
  if (data.empty()) return out;

  // Membership in cov(F, D) and, per rule, the agreement accumulators.
  std::vector<bool> covered(data.size(), false);
  double mra_weighted = 0.0;
  std::size_t cover_weights = 0;
  for (const auto& rule : frs.rules()) {
    double acc = 0.0;
    std::size_t cov = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      const auto row = data.row(i);
      if (!rule.covers(row)) continue;
      covered[i] = true;
      ++cov;
      acc += rule.pi.prob(model.predict(row));
    }
    mra_weighted += acc;  // Σ_covered π(M(x)); per-rule weight = coverage
    cover_weights += cov;
  }
  out.mra = cover_weights > 0
                ? mra_weighted / static_cast<double>(cover_weights)
                : 1.0;  // vacuously satisfied FRS

  ConfusionMatrix cm(data.num_classes());
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (covered[i]) {
      ++out.covered;
    } else {
      ++out.outside;
      cm.add(data.label(i), model.predict(data.row(i)));
    }
  }
  // Support-weighted F1: robust when a class is absent from the outside
  // population (positive-class binary F1 degenerates to 0 there even for a
  // perfect model, so we use the weighted average for all class counts).
  out.outside_f1 = out.outside > 0 ? cm.weighted_f1() : 1.0;
  out.coverage_prob =
      static_cast<double>(out.covered) / static_cast<double>(data.size());
  return out;
}

double test_j_bar(const Model& model, const FeedbackRuleSet& frs,
                  const Dataset& data) {
  const auto b = evaluate_objective(model, frs, data);
  return b.j_bar(b.coverage_prob);
}

double train_j_hat_bar(const Model& model, const FeedbackRuleSet& frs,
                       const Dataset& data) {
  auto b = evaluate_objective(model, frs, data);
  // Pessimistic vacuous MRA: with no covered instance in the evaluation
  // dataset the model has demonstrated no rule agreement at all. This is
  // what lets Algorithm 1 bootstrap in the tcf = 0 regime — the first
  // accepted batch of synthetic instances creates coverage and flips the
  // MRA term from 0 toward 1.
  if (!frs.empty() && b.covered == 0) b.mra = 0.0;
  return b.j_bar(0.5);
}

}  // namespace frote
