// Evaluation metrics: confusion matrix, F1, model-rule agreement (MRA) and
// the paper's objective J / J̄ (eq. 3).
//
// Test-time J̄ (§5.1 "Metrics"): a weighted average where each rule's MRA
// term is weighted by the rule's empirical coverage probability on the test
// set, and the outside-coverage term — measured as F1 — is weighted by the
// outside-coverage probability. Training-time Ĵ uses a fixed 0.5/0.5 MRA/F1
// weighting because FROTE does not know the test coverage probabilities.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "frote/data/dataset.hpp"
#include "frote/ml/model.hpp"
#include "frote/rules/ruleset.hpp"

namespace frote {

/// counts[t][p] = #instances with true class t predicted as p.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t num_classes);

  void add(int true_label, int predicted_label);
  /// Bulk form: add `count` occurrences of the (true, predicted) pair — the
  /// merge path for counts accumulated across evaluation chunks.
  void add(int true_label, int predicted_label, std::size_t count);
  std::size_t count(int true_label, int predicted_label) const;
  std::size_t total() const { return total_; }
  std::size_t num_classes() const { return classes_; }

  double accuracy() const;
  /// Per-class F1 (harmonic mean of precision/recall; 0 when undefined).
  double f1(int cls) const;
  /// Unweighted mean of per-class F1 over classes present in the data
  /// (sklearn's f1_score(average="macro") restricted to observed classes).
  double macro_f1() const;
  /// Support-weighted mean of per-class F1 (sklearn average="weighted").
  double weighted_f1() const;

 private:
  std::size_t classes_;
  std::size_t total_ = 0;
  std::vector<std::size_t> counts_;  // classes x classes
};

/// Cached argmax predictions of one model over one dataset's rows, keyed by
/// the dataset's identity (uid / append_epoch / row count) and a
/// caller-managed model stamp. The evaluation sweep (evaluate_objective)
/// fills it as a by-product; the IP selector's borderline scoring reads it
/// back, so in the FROTE loop the current model's predictions over D̂ are
/// computed exactly once per retrain instead of once per consumer
/// (docs/DESIGN.md §5). Predictions are argmax_class(predict_proba) — the
/// same quantity every consumer derives — so serving from the cache is
/// bit-identical to recomputing.
class PredictionCache {
 public:
  /// True when the cache holds predictions of model-stamp `model_stamp`
  /// over exactly the rows `data` currently holds.
  bool valid_for(const Dataset& data, std::uint64_t model_stamp) const {
    return valid_ && model_stamp_ == model_stamp && uid_ == data.uid() &&
           epoch_ == data.append_epoch() && predicted_.size() == data.size();
  }
  const std::vector<int>& predicted() const { return predicted_; }
  /// Claim the cache for (data, model_stamp): returns storage sized to
  /// data.size() for the caller to fill (chunks may write disjoint ranges).
  /// The cache stays invalid until mark_filled() — a fill that throws must
  /// not leave a valid-looking cache of sentinels behind.
  std::vector<int>& reset(const Dataset& data, std::uint64_t model_stamp);
  /// Declare the storage handed out by reset() fully populated.
  void mark_filled() { valid_ = true; }
  void invalidate() { valid_ = false; }

 private:
  std::vector<int> predicted_;
  std::uint64_t uid_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t model_stamp_ = 0;
  bool valid_ = false;
};

/// Model-rule agreement of `model` on the rows of `data` covered by `rule`:
/// the expectation over Y~π of 1 − L1(M(X), Y) with 0-1 loss, i.e. the mean
/// of π(M(x)) over covered x. Returns the agreement and the cover size.
struct RuleAgreement {
  double mra = 0.0;      // meaningful only when covered > 0
  std::size_t covered = 0;
};
RuleAgreement rule_agreement(const Model& model, const FeedbackRule& rule,
                             const Dataset& data, int threads = 0);

/// Components of the objective on a dataset.
struct ObjectiveBreakdown {
  double mra = 0.0;          // coverage-weighted mean over rules
  double outside_f1 = 0.0;   // F1 on rows outside cov(F, D)
  double coverage_prob = 0.0;  // |cov(F,D)| / |D|
  std::size_t covered = 0;
  std::size_t outside = 0;
  /// J̄ = 1 − J with the given MRA weight (coverage-probability weighting
  /// for test evaluation; 0.5 for FROTE's internal Ĵ).
  double j_bar(double mra_weight) const {
    return mra_weight * mra + (1.0 - mra_weight) * outside_f1;
  }
};

/// Evaluate MRA / outside-coverage F1 of `model` against `frs` on `data`.
/// Per-rule MRA terms are weighted by empirical per-rule coverage within the
/// covered population (eq. 3's Pr(X ∈ cov(s_r)) normalised over the FRS).
/// The dataset sweep is chunked through util/parallel.hpp: each chunk
/// accumulates per-rule MRA terms and confusion counts independently, and
/// chunks combine in ascending order — `threads` (0 ⇒ FROTE_NUM_THREADS)
/// never changes the result.
ObjectiveBreakdown evaluate_objective(const Model& model,
                                      const FeedbackRuleSet& frs,
                                      const Dataset& data, int threads = 0);

/// Cache-aware form: when `cache` already holds `model_stamp`'s predictions
/// over data's rows they are served instead of re-predicting; otherwise the
/// sweep computes them once and (re)fills the cache under `model_stamp`.
/// Either way the returned breakdown is bit-identical to the plain form.
ObjectiveBreakdown evaluate_objective(const Model& model,
                                      const FeedbackRuleSet& frs,
                                      const Dataset& data, int threads,
                                      PredictionCache& cache,
                                      std::uint64_t model_stamp);

/// Test-set J̄ per §5.1: MRA term weighted by the empirical coverage
/// probability of the FRS in `data`, F1 term by its complement.
double test_j_bar(const Model& model, const FeedbackRuleSet& frs,
                  const Dataset& data, int threads = 0);

/// FROTE's internal training objective Ĵ's complement: 0.5·MRA + 0.5·F1.
double train_j_hat_bar(const Model& model, const FeedbackRuleSet& frs,
                       const Dataset& data, int threads = 0);

/// Cache-aware form of train_j_hat_bar (see evaluate_objective above).
double train_j_hat_bar(const Model& model, const FeedbackRuleSet& frs,
                       const Dataset& data, int threads,
                       PredictionCache& cache, std::uint64_t model_stamp);

}  // namespace frote
