// External-consumer smoke: build an Engine, run a Session, via the umbrella
// header of the installed frote package only.
#include "frote/frote_api.hpp"

#include <iostream>

int main() {
  using namespace frote;
  Dataset train = make_dataset(UciDataset::kBreastCancer, 300);
  FeedbackRule rule = FeedbackRule::deterministic(
      Clause({Predicate{0, Op::kGt, 5.0}}), 1, train.num_classes());
  DecisionTreeLearner learner;
  auto engine = Engine::Builder().rules(FeedbackRuleSet({rule})).tau(3).build()
                    .value();
  auto session = engine.open(train, learner).value();
  session.run();
  std::cout << "frote package smoke: +"
            << std::move(session).result().instances_added << " rows\n";
  return 0;
}
